package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"softrate/internal/linkstore"
	"softrate/internal/obs"
)

// TCP transport: each request batch is a uint32 little-endian payload
// length followed by that many bytes of feedback records (codec.go); each
// response is a uint32 record count followed by one rate-index byte per
// record, in request order (v3 responses are additionally prefixed with
// the request ID).
//
// Classic (v1/v2) connections are stop-and-wait: one batch in flight,
// each response flushed before the next request is read. With the v3
// framing a client keeps up to its pipeline depth of batches in flight;
// the server still answers strictly in arrival order, but it only
// flushes its write buffer when no further request bytes are already
// buffered — so a full pipeline amortizes one syscall-and-wakeup round
// trip over many batches instead of paying it per batch. That deferral
// is safe with any conforming client: a client always finishes writing
// (and flushing) a request before it waits for responses, so bytes the
// server sees buffered are always the prefix of work it can finish
// without waiting on the peer.

// maxPayload is the largest accepted batch payload (a full pipelined
// batch: v3 header plus MaxBatch records).
const maxPayload = headerSizeV3 + MaxBatch*RecordSizeV2

type tcpState struct {
	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	stop      chan struct{}
	closed    bool
	sweeping  bool
	draining  atomic.Bool
	wg        sync.WaitGroup
	// loops counts serve loops that are not socket connections (the shm
	// transport); Drain waits for them alongside conns.
	loops int

	// Transport counters (see TransportStatus for meanings). Recording is
	// one atomic per event, off the per-record path: versions count per
	// request batch, connections per accept.
	accepted      obs.Counter
	active        obs.Gauge
	reqV1         obs.Counter
	reqV2         obs.Counter
	reqV3         obs.Counter
	framingErrors obs.Counter
	slowEvicted   obs.Counter
}

// clientPoisons counts Client poisonings process-wide (the client side
// lives in this package; a softrated process only sees nonzero here when
// clients share its process, e.g. loadgen -tcp loopback).
var clientPoisons obs.Counter

// transportStatus snapshots the transport counters.
func (s *Server) transportStatus() TransportStatus {
	return TransportStatus{
		ConnsAccepted:      s.tcp.accepted.Load(),
		ConnsActive:        s.tcp.active.Load(),
		RequestsV1:         s.tcp.reqV1.Load(),
		RequestsV2:         s.tcp.reqV2.Load(),
		RequestsV3:         s.tcp.reqV3.Load(),
		FramingErrors:      s.tcp.framingErrors.Load(),
		ClientsPoisoned:    clientPoisons.Load(),
		SlowClientsEvicted: s.tcp.slowEvicted.Load(),
		Draining:           s.tcp.draining.Load(),
	}
}

func (t *tcpState) init() {
	if t.listeners == nil {
		t.listeners = make(map[net.Listener]struct{})
		t.conns = make(map[net.Conn]struct{})
		t.stop = make(chan struct{})
	}
}

// Serve accepts and serves connections on l until Close is called or the
// listener fails. It may be called on several listeners concurrently. If
// the store has an eviction TTL, the first Serve starts one background
// sweeper so fully idle deployments still shed links; the sweeper (like
// any open connections) runs until Close — call Close even after Serve
// returns an error to release it.
func (s *Server) Serve(l net.Listener) error {
	s.tcp.mu.Lock()
	if s.tcp.closed {
		s.tcp.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.tcp.init()
	s.tcp.listeners[l] = struct{}{}
	stop := s.tcp.stop
	// wg.Add must happen while the closed check still holds (under the
	// lock), or Close's Wait could observe a zero counter and return
	// before a goroutine spawned here starts.
	startSweeper := s.ttl > 0 && !s.tcp.sweeping
	if startSweeper {
		s.tcp.sweeping = true
		s.tcp.wg.Add(1)
	}
	s.tcp.mu.Unlock()

	if startSweeper {
		go func() {
			defer s.tcp.wg.Done()
			s.sweeper(s.ttl/4+time.Millisecond, stop)
		}()
	}

	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-stop:
				return nil // orderly shutdown
			default:
				if s.tcp.draining.Load() {
					return nil // orderly drain closed the listener
				}
				return err
			}
		}
		s.tcp.mu.Lock()
		if s.tcp.closed || s.tcp.draining.Load() {
			s.tcp.mu.Unlock()
			conn.Close()
			return nil
		}
		s.tcp.conns[conn] = struct{}{}
		s.tcp.wg.Add(1) // under the lock: pairs with the closed check above
		s.tcp.mu.Unlock()
		s.tcp.accepted.Inc()
		s.tcp.active.Add(1)
		go func() {
			defer s.tcp.wg.Done()
			s.handleConn(conn)
			s.tcp.mu.Lock()
			delete(s.tcp.conns, conn)
			s.tcp.mu.Unlock()
			s.tcp.active.Add(-1)
		}()
	}
}

// Drain gracefully quiesces the TCP transport: listeners close so no new
// connection is accepted, every open connection finishes the requests it
// has already received — the in-flight pipelined window is answered and
// flushed — and idle connections are woken by a read deadline at now +
// grace. Once every connection has drained (or grace expires and the
// stragglers are force-closed), the sweeper stops and Drain returns with
// the server fully closed. This is the shutdown primitive cluster-level
// link migration needs: after Drain returns, every accepted request has
// a flushed response and the store is quiescent, so its state can be
// snapshotted or handed off. Concurrent and repeated calls are safe.
func (s *Server) Drain(grace time.Duration) {
	s.tcp.mu.Lock()
	s.tcp.init()
	if s.tcp.closed {
		s.tcp.mu.Unlock()
		s.tcp.wg.Wait()
		return
	}
	s.tcp.draining.Store(true)
	for l := range s.tcp.listeners {
		l.Close()
	}
	deadline := time.Now().Add(grace)
	for c := range s.tcp.conns {
		// Wake handlers blocked reading an idle connection; handlers mid-
		// request keep reading (their bytes arrive long before the
		// deadline) and re-check the draining flag between requests.
		c.SetReadDeadline(deadline)
	}
	s.tcp.mu.Unlock()

	for time.Now().Before(deadline) {
		s.tcp.mu.Lock()
		n := len(s.tcp.conns) + s.tcp.loops
		s.tcp.mu.Unlock()
		if n == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Close() // force-closes stragglers, stops the sweeper, waits handlers out
}

// Close shuts down all listeners and connections and waits for handler
// goroutines to drain.
func (s *Server) Close() {
	s.tcp.mu.Lock()
	s.tcp.init()
	if s.tcp.closed {
		s.tcp.mu.Unlock()
		s.tcp.wg.Wait()
		return
	}
	s.tcp.closed = true
	close(s.tcp.stop)
	for l := range s.tcp.listeners {
		l.Close()
	}
	for c := range s.tcp.conns {
		c.Close()
	}
	s.tcp.mu.Unlock()
	s.tcp.wg.Wait()
}

// handleConn runs the request loop for one connection; buffers are reused
// across batches so steady-state service is allocation-free.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var (
		hdr     [4]byte
		payload []byte
		ops     []linkstore.Op
		out     []int32
		resp    []byte
	)
	for {
		if s.tcp.draining.Load() && br.Buffered() == 0 {
			// Graceful drain: everything this connection submitted has been
			// answered and flushed (the flush below runs whenever the read
			// buffer empties); stop before blocking on a next request.
			return
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return // EOF, peer gone, or the drain deadline expired while idle
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > maxPayload {
			s.tcp.framingErrors.Inc()
			return // protocol violation: drop the connection
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		ops2, reqID, tagged, err := DecodeRequest(payload, ops)
		if err != nil {
			s.tcp.framingErrors.Inc()
			return
		}
		ops = ops2
		switch {
		case tagged:
			s.tcp.reqV3.Inc()
		case len(payload)%RecordSize == 0:
			s.tcp.reqV1.Inc()
		default:
			s.tcp.reqV2.Inc()
		}
		if cap(out) < len(ops) {
			out = make([]int32, len(ops))
		}
		s.Decide(ops, out[:len(ops)])

		// Response: [reqID?][count][one rate byte per record], written
		// with indexed stores into a right-sized reused buffer.
		need := 4 + len(ops)
		if tagged {
			need += 4
		}
		if cap(resp) < need {
			resp = make([]byte, need)
		}
		resp = resp[:need]
		off := 0
		if tagged {
			binary.LittleEndian.PutUint32(resp[0:4], reqID)
			off = 4
		}
		binary.LittleEndian.PutUint32(resp[off:off+4], uint32(len(ops)))
		for i, ri := range out[:len(ops)] {
			resp[off+4+i] = uint8(ri)
		}
		// Slow-client eviction: arm the write deadline only when this
		// iteration can actually touch the socket (the buffered write
		// below would overflow into a flush, or the explicit flush runs).
		// A peer that has stopped reading then errors out of the write
		// within WriteTimeout instead of pinning this handler — and the
		// drain path — on a full socket buffer forever.
		flushing := br.Buffered() == 0
		if s.writeTimeout > 0 && (flushing || bw.Available() < len(resp)) {
			conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		if _, err := bw.Write(resp); err != nil {
			s.noteWriteError(err)
			return
		}
		// Pipelining: defer the flush while more request bytes are already
		// buffered — the pending responses go out in one write once the
		// burst is served. (bufio transparently flushes earlier if the
		// responses outgrow the buffer.)
		if flushing {
			if err := bw.Flush(); err != nil {
				s.noteWriteError(err)
				return
			}
		}
	}
}

// noteWriteError counts a response write that failed on its deadline: a
// stuck peer evicted by the slow-client policy (other write errors — the
// peer vanished mid-write — just end the handler as before).
func (s *Server) noteWriteError(err error) {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		s.tcp.slowEvicted.Inc()
	}
}

// Client is a TCP client for the decision service. It is not safe for
// concurrent use; open one Client per sending goroutine.
//
// A Client is poisoned by its first transport or protocol error: the
// connection's framing state is then unknown (there may be unread
// response bytes on the wire), so instead of silently reading garbage,
// every subsequent call fails fast with the original error. Dial again to
// recover. Argument-validation errors (oversized batch, unencodable rate
// index) are detected before anything is written and do not poison.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte
	err  error // sticky poison

	// Pipelined mode (DialPipelined): up to depth requests in flight,
	// answered in order and matched by request ID through a reused
	// response ring. Slots are assigned by rotating cursors, not by
	// reqID arithmetic, so the uint32 request IDs may wrap freely.
	depth      int
	nextID     uint32
	nextRespID uint32
	subSlot    int // ring slot the next Submit takes
	respSlot   int // ring slot the next response belongs to
	respBytes  int // response bytes in flight, against maxPipelineBytes
	ring       []Pending
}

// maxPipelineBytes bounds the response bytes outstanding on a pipelined
// connection. The client only reads responses inside Wait, so an
// unbounded Submit burst could fill the server's write buffer and both
// socket buffers with responses until the server blocks writing and
// stops reading — a mutual write-write deadlock. Keeping all in-flight
// responses within the server's own 64 KB write buffer means the server
// can always finish serving everything the client has submitted without
// blocking on the socket. A batch's response is 8 bytes + one byte per
// record.
const maxPipelineBytes = 32 << 10

// Pending is one in-flight pipelined batch. It stays owned by the Client:
// valid from the Submit that returned it until its Wait returns, after
// which the slot (and its response buffer) is reused by a later Submit
// and the Pending may not be waited on again.
type Pending struct {
	id    uint32
	n     int
	live  bool // occupies its ring slot: submitted, Wait not yet returned
	done  bool // response received (possibly parked awaiting its Wait)
	rates []byte
}

// ErrPipelineFull is returned by Submit when the connection cannot take
// another batch: either every ring slot is occupied — its full depth of
// batches submitted and not yet Waited on (a parked, already-answered
// batch still holds its slot until its Wait collects it) — or the new
// batch's response would push the outstanding response bytes past the
// deadlock-safety budget. Wait on the oldest Pending first.
var ErrPipelineFull = errors.New("server: pipeline full")

// Dial connects to a softrated server in classic stop-and-wait mode.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// DialPipelined connects to a softrated server in pipelined (v3) mode:
// up to depth batches may be in flight at once via Submit/Wait (further
// capped by the maxPipelineBytes response budget), and Decide becomes a
// Submit immediately followed by its Wait.
func DialPipelined(addr string, depth int) (*Client, error) {
	if depth < 1 {
		return nil, fmt.Errorf("server: pipeline depth %d, need at least 1", depth)
	}
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	c.depth = depth
	c.ring = make([]Pending, depth)
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// poison records the first transport/protocol error and returns it; all
// later calls fail fast with a wrapped form of it.
func (c *Client) poison(err error) error {
	if c.err == nil {
		c.err = fmt.Errorf("server: client poisoned by earlier error: %w", err)
		clientPoisons.Inc()
	}
	return err
}

// validate rejects batches the wire cannot carry, before any bytes move.
func validate(ops []linkstore.Op) error {
	if len(ops) > MaxBatch {
		return fmt.Errorf("server: batch of %d exceeds maximum %d", len(ops), MaxBatch)
	}
	for i := range ops {
		// The wire record has one byte for the rate index; reject rather
		// than truncate to a different, valid-looking index.
		if ops[i].RateIndex < 0 || ops[i].RateIndex > 255 {
			return fmt.Errorf("server: op %d: rate index %d not encodable in one byte", i, ops[i].RateIndex)
		}
	}
	return nil
}

// Submit sends one batch in the pipelined framing without waiting for its
// response and returns its Pending token. The write lands in the client's
// buffer; it reaches the wire by the time any Wait needs it (or when the
// buffer fills), so a burst of Submits travels as one segment. Requires a
// DialPipelined client with in-flight capacity.
func (c *Client) Submit(ops []linkstore.Op) (*Pending, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.depth == 0 {
		return nil, errors.New("server: Submit needs a pipelined client (use DialPipelined)")
	}
	p := &c.ring[c.subSlot]
	if p.live {
		// The slot's previous batch was submitted but its Wait has not
		// returned yet (it may be parked, answered but uncollected);
		// reusing the slot would hand its response to the wrong Pending.
		return nil, ErrPipelineFull
	}
	if need := 8 + len(ops); c.respBytes > 0 && c.respBytes+need > maxPipelineBytes {
		// A lone oversized batch is allowed (with nothing else in flight
		// it is effectively stop-and-wait); stacking it is not.
		return nil, ErrPipelineFull
	}
	if err := validate(ops); err != nil {
		return nil, err
	}
	id := c.nextID
	c.nextID++
	c.subSlot++
	if c.subSlot == c.depth {
		c.subSlot = 0
	}
	c.respBytes += 8 + len(ops)
	p.id, p.n, p.live, p.done = id, len(ops), true, false

	c.buf = c.buf[:0]
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(headerSizeV3+len(ops)*RecordSizeV2))
	c.buf = append(c.buf, hdr[:]...)
	c.buf = AppendOpsV3(c.buf, id, ops)
	if _, err := c.bw.Write(c.buf); err != nil {
		return nil, c.poison(err)
	}

	return p, nil
}

// Wait blocks until p's response arrives and writes its rate indices to
// out (which must be at least as long as p's batch), then releases p's
// ring slot for a later Submit. Responses arrive in submission order;
// waiting on a newer Pending parks the older ones' responses in their
// ring slots, so Wait order is free — but each Pending may be waited on
// exactly once.
func (c *Client) Wait(p *Pending, out []int32) ([]int32, error) {
	if c.err != nil {
		return nil, c.err
	}
	if p == nil || !p.live {
		return nil, errors.New("server: Wait on a Pending that is not in flight")
	}
	for !p.done {
		if err := c.bw.Flush(); err != nil {
			return nil, c.poison(err)
		}
		var hdr [8]byte
		if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
			return nil, c.poison(err)
		}
		id := binary.LittleEndian.Uint32(hdr[0:4])
		count := binary.LittleEndian.Uint32(hdr[4:8])
		if id != c.nextRespID {
			return nil, c.poison(fmt.Errorf("server: response for request %d, expected %d", id, c.nextRespID))
		}
		q := &c.ring[c.respSlot]
		if q.id != id || !q.live || q.done {
			return nil, c.poison(fmt.Errorf("server: response for request %d, which is not in flight", id))
		}
		if int(count) != q.n {
			return nil, c.poison(fmt.Errorf("server: response count %d for a batch of %d", count, q.n))
		}
		if cap(q.rates) < q.n {
			q.rates = make([]byte, q.n)
		}
		q.rates = q.rates[:q.n]
		if _, err := io.ReadFull(c.br, q.rates); err != nil {
			return nil, c.poison(err)
		}
		q.done = true
		c.nextRespID++
		c.respSlot++
		if c.respSlot == c.depth {
			c.respSlot = 0
		}
		c.respBytes -= 8 + q.n
	}
	for i, b := range p.rates {
		out[i] = int32(b)
	}
	p.live = false // slot free for reuse from here on
	return out[:p.n], nil
}

// Decide sends one batch and writes the returned rate indices to out
// (which must be at least len(ops) long), returning out[:len(ops)]. On a
// classic client it runs the stop-and-wait v2 exchange (the server
// accepts v1 from older peers, but only v2 carries per-link algorithm
// selection and the frame-level feedback fields); on a pipelined client
// it is Submit immediately followed by its Wait and may interleave with
// other in-flight batches.
func (c *Client) Decide(ops []linkstore.Op, out []int32) ([]int32, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.depth > 0 {
		p, err := c.Submit(ops)
		if err != nil {
			return nil, err
		}
		return c.Wait(p, out)
	}
	if err := validate(ops); err != nil {
		return nil, err
	}
	c.buf = c.buf[:0]
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(1+len(ops)*RecordSizeV2))
	c.buf = append(c.buf, hdr[:]...)
	c.buf = AppendOpsV2(c.buf, ops)
	if _, err := c.bw.Write(c.buf); err != nil {
		return nil, c.poison(err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.poison(err)
	}

	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, c.poison(err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int(n) != len(ops) {
		// The connection now has n unread rate bytes in transit; poisoning
		// keeps a later call from reading them as a length prefix.
		return nil, c.poison(fmt.Errorf("server: response count %d for a batch of %d", n, len(ops)))
	}
	c.buf = c.buf[:0]
	if cap(c.buf) < int(n) {
		c.buf = make([]byte, n)
	}
	c.buf = c.buf[:n]
	if _, err := io.ReadFull(c.br, c.buf); err != nil {
		return nil, c.poison(err)
	}
	for i, b := range c.buf {
		out[i] = int32(b)
	}
	return out[:len(ops)], nil
}
