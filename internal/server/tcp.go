package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"softrate/internal/linkstore"
)

// TCP transport: each request batch is a uint32 little-endian payload
// length followed by that many bytes of feedback records (codec.go); each
// response is a uint32 record count followed by one rate-index byte per
// record, in request order. One request is answered before the next is
// read, so a connection is a simple pipeline with at most one batch in
// flight per client — senders wanting more parallelism open more
// connections (the MAC has one feedback stream per link anyway).

// maxPayload is the largest accepted batch payload (a full v2 batch:
// version byte plus MaxBatch records).
const maxPayload = 1 + MaxBatch*RecordSizeV2

type tcpState struct {
	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	stop      chan struct{}
	closed    bool
	sweeping  bool
	wg        sync.WaitGroup
}

func (t *tcpState) init() {
	if t.listeners == nil {
		t.listeners = make(map[net.Listener]struct{})
		t.conns = make(map[net.Conn]struct{})
		t.stop = make(chan struct{})
	}
}

// Serve accepts and serves connections on l until Close is called or the
// listener fails. It may be called on several listeners concurrently. If
// the store has an eviction TTL, the first Serve starts one background
// sweeper so fully idle deployments still shed links; the sweeper (like
// any open connections) runs until Close — call Close even after Serve
// returns an error to release it.
func (s *Server) Serve(l net.Listener) error {
	s.tcp.mu.Lock()
	if s.tcp.closed {
		s.tcp.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.tcp.init()
	s.tcp.listeners[l] = struct{}{}
	stop := s.tcp.stop
	// wg.Add must happen while the closed check still holds (under the
	// lock), or Close's Wait could observe a zero counter and return
	// before a goroutine spawned here starts.
	startSweeper := s.ttl > 0 && !s.tcp.sweeping
	if startSweeper {
		s.tcp.sweeping = true
		s.tcp.wg.Add(1)
	}
	s.tcp.mu.Unlock()

	if startSweeper {
		go func() {
			defer s.tcp.wg.Done()
			s.sweeper(s.ttl/4+time.Millisecond, stop)
		}()
	}

	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-stop:
				return nil // orderly shutdown
			default:
				return err
			}
		}
		s.tcp.mu.Lock()
		if s.tcp.closed {
			s.tcp.mu.Unlock()
			conn.Close()
			return nil
		}
		s.tcp.conns[conn] = struct{}{}
		s.tcp.wg.Add(1) // under the lock: pairs with the closed check above
		s.tcp.mu.Unlock()
		go func() {
			defer s.tcp.wg.Done()
			s.handleConn(conn)
			s.tcp.mu.Lock()
			delete(s.tcp.conns, conn)
			s.tcp.mu.Unlock()
		}()
	}
}

// Close shuts down all listeners and connections and waits for handler
// goroutines to drain.
func (s *Server) Close() {
	s.tcp.mu.Lock()
	s.tcp.init()
	if s.tcp.closed {
		s.tcp.mu.Unlock()
		s.tcp.wg.Wait()
		return
	}
	s.tcp.closed = true
	close(s.tcp.stop)
	for l := range s.tcp.listeners {
		l.Close()
	}
	for c := range s.tcp.conns {
		c.Close()
	}
	s.tcp.mu.Unlock()
	s.tcp.wg.Wait()
}

// handleConn runs the request loop for one connection; buffers are reused
// across batches so steady-state service is allocation-free.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var (
		hdr     [4]byte
		payload []byte
		ops     []linkstore.Op
		out     []int32
		resp    []byte
	)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return // EOF or peer gone
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > maxPayload {
			return // protocol violation: drop the connection
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		var err error
		ops, err = DecodeBatch(payload, ops)
		if err != nil {
			return
		}
		if cap(out) < len(ops) {
			out = make([]int32, len(ops))
		}
		s.Decide(ops, out[:len(ops)])

		resp = resp[:0]
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], uint32(len(ops)))
		resp = append(resp, cnt[:]...)
		for _, ri := range out[:len(ops)] {
			resp = append(resp, uint8(ri))
		}
		if _, err := bw.Write(resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Client is a TCP client for the decision service. It is not safe for
// concurrent use; open one Client per sending goroutine.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte
}

// Dial connects to a softrated server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Decide sends one batch (always in the v2 encoding — the server accepts
// v1 from older peers, but only v2 carries per-link algorithm selection
// and the frame-level feedback fields) and writes the returned rate
// indices to out (which must be at least len(ops) long). Returns
// out[:len(ops)].
func (c *Client) Decide(ops []linkstore.Op, out []int32) ([]int32, error) {
	if len(ops) > MaxBatch {
		return nil, fmt.Errorf("server: batch of %d exceeds maximum %d", len(ops), MaxBatch)
	}
	for i := range ops {
		// The wire record has one byte for the rate index; reject rather
		// than truncate to a different, valid-looking index.
		if ops[i].RateIndex < 0 || ops[i].RateIndex > 255 {
			return nil, fmt.Errorf("server: op %d: rate index %d not encodable in one byte", i, ops[i].RateIndex)
		}
	}
	c.buf = c.buf[:0]
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(1+len(ops)*RecordSizeV2))
	c.buf = append(c.buf, hdr[:]...)
	c.buf = AppendOpsV2(c.buf, ops)
	if _, err := c.bw.Write(c.buf); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}

	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int(n) != len(ops) {
		return nil, fmt.Errorf("server: response count %d for a batch of %d", n, len(ops))
	}
	c.buf = c.buf[:0]
	if cap(c.buf) < int(n) {
		c.buf = make([]byte, n)
	}
	c.buf = c.buf[:n]
	if _, err := io.ReadFull(c.br, c.buf); err != nil {
		return nil, err
	}
	for i, b := range c.buf {
		out[i] = int32(b)
	}
	return out[:len(ops)], nil
}
