package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"syscall"
	"time"

	"softrate/internal/linkstore"
)

// UDP datagram transport. Each datagram is one self-contained request
// payload — exactly the framings of codec.go with no length prefix (the
// datagram boundary is the frame): the canonical form is the v3 payload
// [0x03][seq u32][28-byte records...], and bare v1/v2 payloads from older
// peers are accepted too. A response datagram echoes the request's seq
// (v3) followed by the uint32 record count and one rate byte per record;
// v1/v2 requests get the count and rates without a seq echo.
//
// The transport is deliberately connectionless and loss-tolerant: rate
// feedback is naturally tolerant of a dropped decision — the sender just
// keeps its current rate for one more frame — so there is no
// retransmission, no ordering guarantee, and no per-peer state on the
// server. A request that never arrives is never answered; a response
// that is lost times out on the client, which treats it as "keep the
// current rate" and moves on. Unlike the TCP Client's sticky poison
// (where a framing error means the stream position is unknowable), a
// lost or malformed datagram cannot desync anything: every datagram
// stands alone.
//
// The server side is an explicit burst loop (see burst.go): block for
// one datagram, then drain — without blocking — whatever else the socket
// buffer already holds, up to BurstSize, route the whole burst through
// one Decide, and write the responses back-to-back. Under load the
// socket buffer refills while a burst is being served, so the per-burst
// amortization sustains itself; an idle socket costs one poll wakeup per
// udpPollInterval.

// udpPollInterval bounds how long the UDP read loop blocks before
// re-checking the draining/closed flags: drains and Close are noticed
// within this interval even if no datagram ever arrives.
const udpPollInterval = 100 * time.Millisecond

// aLongTimeAgo is an expired deadline: reads with it return immediately
// with a timeout once the socket buffer is empty (the non-blocking drain
// phase of the burst loop).
var aLongTimeAgo = time.Unix(1, 0)

// ServeUDP serves the datagram transport on conn until Close or Drain.
// It may run concurrently with Serve (TCP) and other ServeUDP calls on
// other sockets; they all share one store and one lifecycle (the
// connection participates in Drain: the burst in hand is fully answered
// before the loop exits, and everything still unread in the socket
// buffer is — by the transport's loss contract — indistinguishable from
// a datagram lost in flight). Returns nil on orderly shutdown.
func (s *Server) ServeUDP(conn *net.UDPConn) error {
	s.tcp.mu.Lock()
	if s.tcp.closed {
		s.tcp.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.tcp.init()
	if s.tcp.draining.Load() {
		s.tcp.mu.Unlock()
		return nil
	}
	s.tcp.conns[conn] = struct{}{}
	s.tcp.wg.Add(1)
	stop := s.tcp.stop
	startSweeper := s.ttl > 0 && !s.tcp.sweeping
	if startSweeper {
		s.tcp.sweeping = true
		s.tcp.wg.Add(1)
	}
	s.tcp.mu.Unlock()
	if startSweeper {
		go func() {
			defer s.tcp.wg.Done()
			s.sweeper(s.ttl/4+time.Millisecond, stop)
		}()
	}
	defer func() {
		s.tcp.mu.Lock()
		delete(s.tcp.conns, conn)
		s.tcp.mu.Unlock()
		conn.Close()
		s.tcp.wg.Done()
	}()

	eng := newBurstEngine(s, &s.udp)
	slab := make([]byte, BurstSize*MaxDatagram)
	var addrs [BurstSize]netip.AddrPort
	var sizes [BurstSize]int
	for {
		if s.tcp.draining.Load() {
			return nil
		}
		select {
		case <-stop:
			return nil
		default:
		}
		// Blocking phase: wait (bounded, so flag flips are noticed) for
		// the burst's first datagram.
		conn.SetReadDeadline(time.Now().Add(udpPollInterval))
		n, addr, err := conn.ReadFromUDPAddrPort(slab[:MaxDatagram])
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			if s.tcp.draining.Load() {
				return nil
			}
			select {
			case <-stop:
				return nil
			default:
			}
			return err
		}
		sizes[0], addrs[0] = n, addr
		count := 1
		// Drain phase: everything already queued, without blocking.
		conn.SetReadDeadline(aLongTimeAgo)
		for count < BurstSize {
			n, addr, err := conn.ReadFromUDPAddrPort(slab[count*MaxDatagram : (count+1)*MaxDatagram])
			if err != nil {
				break // empty buffer (timeout) or a transient error: burst done
			}
			sizes[count], addrs[count] = n, addr
			count++
		}

		// Overload shedding: with the admission gate saturated, drop the
		// whole burst before decoding — no Decide, no responses. Under
		// the transport's loss contract this is indistinguishable from
		// the datagrams being lost in flight (clients time out and keep
		// their rates; crucially, the ops are NOT applied, so answered
		// decisions elsewhere stay byte-identical), and it keeps a
		// datagram flood from queueing unboundedly behind the lossless
		// transports at the gate.
		if s.gateSaturated() {
			s.udp.shed.Add(uint64(count))
			continue
		}
		eng.reset()
		for i := 0; i < count; i++ {
			eng.add(slab[i*MaxDatagram : i*MaxDatagram+sizes[i]]).addr = addrs[i]
		}
		eng.finish()
		for i := range eng.dgrams() {
			d := &eng.dgrams()[i]
			if !d.ok {
				continue
			}
			if _, err := conn.WriteToUDPAddrPort(eng.response(d), d.addr); err != nil {
				s.udp.txErrs.Inc()
				continue
			}
			s.udp.tx.Inc()
		}
	}
}

// UDPClient is a datagram client for the decision service. It is not
// safe for concurrent use; open one per sending goroutine.
//
// Semantics differ from the TCP Client on purpose: there is no sticky
// poison. Datagram loss is normal operation — a Wait that times out
// reports ok=false ("the decision is lost; keep the current rate") and
// the client remains fully usable; late and duplicate responses are
// counted and discarded. Only socket-level failures (the socket closed,
// the kernel refusing the write) surface as errors.
type UDPClient struct {
	conn    *net.UDPConn
	timeout time.Duration
	ring    []UDPPending
	nextSeq uint32
	buf     []byte // encode scratch
	rbuf    []byte // receive scratch

	// DropResponse, when non-nil, is consulted for every response
	// datagram after parsing and before matching; returning true discards
	// it as if the network had dropped it. It exists for loss-injection
	// tests and CI chaos smokes — leave nil in production.
	DropResponse func(seq uint32) bool

	// OnResponse, when non-nil, observes every well-formed response
	// datagram the moment it arrives — before the DropResponse shim and
	// regardless of whether the request is still in flight (late and
	// duplicate responses fire it too). A response existing proves the
	// server APPLIED seq's ops, which is exactly what an exact-replay
	// verifier needs to know: a request the server shed produces no
	// response and never fires the hook. rates is only valid during the
	// call. Leave nil in production.
	OnResponse func(seq uint32, rates []byte)

	stats UDPClientStats
}

// UDPPending is one in-flight datagram request. It is owned by the
// client: valid from the Submit that returned it until its Wait returns.
type UDPPending struct {
	seq      uint32
	n        int
	live     bool
	done     bool
	deadline time.Time
	rates    []byte
}

// Seq is the request's datagram sequence number — the key OnResponse
// reports, so external verifiers can correlate submissions with the
// responses that prove them applied.
func (p *UDPPending) Seq() uint32 { return p.seq }

// UDPClientStats counts the client's datagram fates.
type UDPClientStats struct {
	// Sent and Answered count request datagrams sent and responses
	// matched to an in-flight request.
	Sent     uint64 `json:"sent"`
	Answered uint64 `json:"answered"`
	// Timeouts counts Waits that gave up: each is one decision treated as
	// lost (rate kept). Stale counts responses that arrived after their
	// request had already timed out (late duplicates land here too);
	// Malformed counts undecodable response datagrams. Injected counts
	// responses discarded by the DropResponse shim.
	Timeouts  uint64 `json:"timeouts"`
	Stale     uint64 `json:"stale"`
	Malformed uint64 `json:"malformed"`
	Injected  uint64 `json:"injected"`
}

// Stats returns a snapshot of the client's counters.
func (c *UDPClient) Stats() UDPClientStats { return c.stats }

// DialUDP connects a datagram client. window bounds the requests in
// flight (Submit returns ErrPipelineFull beyond it); timeout is how long
// a Wait listens for a response before declaring the decision lost
// (<= 0 picks 50ms, comfortably above loopback round trips and short
// enough that a lost decision stalls a closed loop only briefly).
func DialUDP(addr string, window int, timeout time.Duration) (*UDPClient, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	if window < 1 {
		window = 1
	}
	if timeout <= 0 {
		timeout = 50 * time.Millisecond
	}
	return &UDPClient{
		conn:    conn,
		timeout: timeout,
		ring:    make([]UDPPending, window),
		rbuf:    make([]byte, MaxDatagram),
	}, nil
}

// Close closes the socket.
func (c *UDPClient) Close() error { return c.conn.Close() }

// Submit encodes one batch as a single v3 datagram and sends it without
// waiting. Returns ErrPipelineFull when the whole window is in flight
// (Wait on one first — possibly timing it out — to free a slot).
func (c *UDPClient) Submit(ops []linkstore.Op) (*UDPPending, error) {
	var p *UDPPending
	for i := range c.ring {
		if !c.ring[i].live {
			p = &c.ring[i]
			break
		}
	}
	if p == nil {
		return nil, ErrPipelineFull
	}
	if err := validate(ops); err != nil {
		return nil, err
	}
	if need := headerSizeV3 + len(ops)*RecordSizeV2; need > MaxDatagram {
		return nil, fmt.Errorf("server: batch of %d records needs %d bytes, above the %d-byte datagram bound", len(ops), need, MaxDatagram)
	}
	seq := c.nextSeq
	c.nextSeq++
	c.buf = AppendOpsV3(c.buf[:0], seq, ops)
	if _, err := c.conn.Write(c.buf); err != nil && !errors.Is(err, syscall.ECONNREFUSED) {
		// ECONNREFUSED is a queued ICMP port-unreachable from an earlier
		// send — the server is down or restarting. Under the loss contract
		// that is a sent-and-lost datagram (the Wait will time out), not a
		// client failure. Anything else is a real socket error.
		return nil, err
	}
	c.stats.Sent++
	p.seq, p.n, p.live, p.done = seq, len(ops), true, false
	p.deadline = time.Now().Add(c.timeout)
	return p, nil
}

// Wait blocks until p's response arrives or p's timeout expires. On a
// response it writes the rate indices to out (at least p's batch size
// long) and returns (out[:n], true, nil). On timeout it returns
// (nil, false, nil): the decision is lost, the caller keeps its current
// rates, and the client remains usable — loss does not poison. While
// waiting it absorbs responses for other in-flight requests (they park
// in their slots), so Wait order is free.
func (c *UDPClient) Wait(p *UDPPending, out []int32) ([]int32, bool, error) {
	if p == nil || !p.live {
		return nil, false, errors.New("server: Wait on a request that is not in flight")
	}
	for !p.done {
		now := time.Now()
		if !now.Before(p.deadline) {
			p.live = false
			c.stats.Timeouts++
			return nil, false, nil
		}
		c.conn.SetReadDeadline(p.deadline)
		n, err := c.conn.Read(c.rbuf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				p.live = false
				c.stats.Timeouts++
				return nil, false, nil
			}
			if errors.Is(err, syscall.ECONNREFUSED) {
				continue // ICMP unreachable: loss, not failure (see Submit)
			}
			return nil, false, err
		}
		c.accept(c.rbuf[:n])
	}
	for i, b := range p.rates {
		out[i] = int32(b)
	}
	p.live = false
	return out[:p.n], true, nil
}

// accept parses one response datagram and parks it in its slot. Anything
// that doesn't match a live request — late, duplicate, malformed — is
// counted and dropped; nothing a peer sends can wedge the client.
func (c *UDPClient) accept(b []byte) {
	if len(b) < 8 {
		c.stats.Malformed++
		return
	}
	seq := binary.LittleEndian.Uint32(b[0:4])
	count := binary.LittleEndian.Uint32(b[4:8])
	if uint64(len(b)-8) != uint64(count) {
		c.stats.Malformed++
		return
	}
	if c.OnResponse != nil {
		c.OnResponse(seq, b[8:])
	}
	if c.DropResponse != nil && c.DropResponse(seq) {
		c.stats.Injected++
		return
	}
	for i := range c.ring {
		q := &c.ring[i]
		if q.live && !q.done && q.seq == seq {
			if int(count) != q.n {
				c.stats.Malformed++
				return
			}
			if cap(q.rates) < q.n {
				q.rates = make([]byte, q.n)
			}
			q.rates = q.rates[:q.n]
			copy(q.rates, b[8:])
			q.done = true
			c.stats.Answered++
			return
		}
	}
	c.stats.Stale++
}

// Decide is Submit immediately followed by its Wait: one stop-and-wait
// exchange with the datagram loss contract (ok=false means the decision
// was lost and the caller should keep its current rates).
func (c *UDPClient) Decide(ops []linkstore.Op, out []int32) ([]int32, bool, error) {
	p, err := c.Submit(ops)
	if err != nil {
		return nil, false, err
	}
	return c.Wait(p, out)
}
