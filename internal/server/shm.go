package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"softrate/internal/linkstore"
	"softrate/internal/server/shmring"
)

// Shared-memory ring transport. A co-located client maps one shmring
// region (a request ring + a response ring over one mmap'd file) and
// exchanges exactly the datagram payloads of udp.go — requests are v3
// payloads [0x03][seq u32][records...], responses [seq][count][rates] —
// but over SPSC rings instead of a socket, so the data path has no
// syscalls at all: a decision round trip is two memcpys and two atomic
// publishes.
//
// Unlike UDP, the rings are lossless and strictly in order, so the
// client mirrors the pipelined TCP Client's contract (in-order response
// matching, sticky poison on desync — a sequence mismatch means shared
// state is corrupt, not that a packet went missing).
//
// The server polls every region in one goroutine: each sweep collects
// up to BurstSize requests across the attached rings into one burst
// engine — one Decide for the whole sweep — and pushes the responses
// into each ring. An idle transport backs off from Gosched spinning to
// millisecond sleeps so a co-resident client (this is a co-location
// transport; on a small host client and server share cores) gets the
// CPU back.

// shm backoff schedule: spin (yield) while work is fresh, then sleep,
// deepening toward shmIdleSleep as the rings stay empty.
const (
	shmSpinSweeps = 256
	shmBusySleep  = 20 * time.Microsecond
	shmIdleSleep  = time.Millisecond
)

// RingPath names ring i's region file under a -shm path prefix: the
// prefix itself for ring 0, prefix.i beyond — so the single-ring default
// needs no suffix juggling on either side. Servers create these files;
// clients scan i = 0.. until an Attach succeeds.
func RingPath(prefix string, i int) string {
	if i == 0 {
		return prefix
	}
	return fmt.Sprintf("%s.%d", prefix, i)
}

// ErrDraining is returned by shm Submit/Wait once the server has begun
// draining: the region is closing, no new work is accepted, and any
// decision not already in the rings is abandoned.
var ErrDraining = errors.New("server: shm region draining")

// ServeSHM serves the shared-memory transport over the given regions
// (typically shmring.Create results, one per expected co-located
// client) until Close or Drain. Like Serve and ServeUDP it shares the
// server's lifecycle: on Drain the regions' draining flags are raised
// (clients stop submitting), every request already in a ring is
// answered, and only then does the loop exit. Region files are neither
// created nor removed here — the caller owns them.
func (s *Server) ServeSHM(regions []*shmring.Region) error {
	if len(regions) == 0 {
		return errors.New("server: ServeSHM needs at least one region")
	}
	s.tcp.mu.Lock()
	if s.tcp.closed {
		s.tcp.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.tcp.init()
	if s.tcp.draining.Load() {
		s.tcp.mu.Unlock()
		return nil
	}
	s.tcp.loops++
	s.tcp.wg.Add(1)
	stop := s.tcp.stop
	startSweeper := s.ttl > 0 && !s.tcp.sweeping
	if startSweeper {
		s.tcp.sweeping = true
		s.tcp.wg.Add(1)
	}
	s.tcp.mu.Unlock()
	if startSweeper {
		go func() {
			defer s.tcp.wg.Done()
			s.sweeper(s.ttl/4+time.Millisecond, stop)
		}()
	}
	defer func() {
		s.tcp.mu.Lock()
		s.tcp.loops--
		s.tcp.mu.Unlock()
		s.tcp.wg.Done()
	}()

	eng := newBurstEngine(s, &s.shm)
	attached := make([]bool, len(regions))
	empties := 0
	for {
		select {
		case <-stop:
			return nil // force close: abandon whatever is still queued
		default:
		}
		draining := s.tcp.draining.Load()
		if draining {
			for _, g := range regions {
				g.SetDraining()
			}
		}

		served := s.sweepSHM(eng, regions, attached, stop)

		if draining && served == 0 {
			// Draining and a full sweep found nothing: every request that
			// made it into a ring before the flag went up is answered.
			return nil
		}
		if served > 0 {
			empties = 0
			continue
		}
		empties++
		switch {
		case empties < shmSpinSweeps:
			runtime.Gosched()
		case empties < 4*shmSpinSweeps:
			time.Sleep(shmBusySleep)
		default:
			time.Sleep(shmIdleSleep)
		}
	}
}

// sweepSHM runs one polling sweep: reclaim closed rings, gather up to
// BurstSize requests across the attached ones, decide them in one
// batch, and push the responses. Returns the number of requests served.
func (s *Server) sweepSHM(eng *burstEngine, regions []*shmring.Region, attached []bool, stop <-chan struct{}) int {
	eng.reset()
	for ri, g := range regions {
		switch g.State() {
		case shmring.StateAttached:
			if !attached[ri] {
				attached[ri] = true
				s.shm.ringsAttached.Add(1)
			}
		case shmring.StateClosing:
			if g.Reclaim() && attached[ri] {
				attached[ri] = false
				s.shm.ringsAttached.Add(-1)
			}
			continue
		default:
			continue
		}
		req := g.Request()
		for eng.n < BurstSize {
			payload, ok := req.Peek()
			if !ok {
				break
			}
			eng.add(payload).ring = ri
			req.Advance() // the engine decoded in place; the bytes are free
		}
		if eng.n == BurstSize {
			break
		}
	}
	if eng.n == 0 {
		return 0
	}
	eng.finish()
	for i := range eng.dgrams() {
		d := &eng.dgrams()[i]
		if !d.ok {
			continue
		}
		g := regions[d.ring]
		resp := eng.response(d)
		for !g.Response().Push(resp) {
			// Response ring full: the client is alive (SPSC — only it can
			// make room) unless it just closed; spin it out.
			if g.State() != shmring.StateAttached {
				s.shm.txErrs.Inc()
				break
			}
			select {
			case <-stop:
				s.shm.txErrs.Inc()
				return eng.n
			default:
				runtime.Gosched()
			}
		}
		s.shm.tx.Inc()
	}
	return eng.n
}

// SHMClient is a shared-memory client for the decision service. It is
// not safe for concurrent use; attach one client per region. Its
// Submit/Wait/Decide contract matches the pipelined TCP Client —
// lossless, in order, sticky poison on desync — so callers can treat
// the two interchangeably.
type SHMClient struct {
	g       *shmring.Region
	timeout time.Duration
	buf     []byte
	err     error // sticky poison

	depth      int
	nextID     uint32
	nextRespID uint32
	subSlot    int
	respSlot   int
	ring       []Pending
}

// DialSHM maps the region file at path and claims it. depth bounds the
// batches in flight (Submit returns ErrPipelineFull beyond it); timeout
// bounds how long Submit and Wait poll a stuck ring before poisoning
// the client (<= 0 picks 5s — on a live server a round trip is
// microseconds, so a timeout means the server is gone).
func DialSHM(path string, depth int, timeout time.Duration) (*SHMClient, error) {
	if depth < 1 {
		depth = 1
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	g, err := shmring.Open(path)
	if err != nil {
		return nil, err
	}
	if g.Draining() {
		g.Close()
		return nil, ErrDraining
	}
	if !g.Attach() {
		g.Close()
		return nil, fmt.Errorf("server: shm region %s already has a client attached", path)
	}
	return &SHMClient{g: g, timeout: timeout, depth: depth, ring: make([]Pending, depth)}, nil
}

// Close detaches from the region (the server reclaims it) and unmaps.
func (c *SHMClient) Close() error {
	c.g.ClientClose()
	return c.g.Close()
}

func (c *SHMClient) poison(err error) error {
	if c.err == nil {
		c.err = fmt.Errorf("server: client poisoned by earlier error: %w", err)
		clientPoisons.Inc()
	}
	return err
}

// Submit encodes one batch as a v3 message and pushes it into the
// request ring without waiting. Returns ErrPipelineFull when the whole
// depth is in flight; blocks (briefly) when the ring itself is full.
func (c *SHMClient) Submit(ops []linkstore.Op) (*Pending, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.g.Draining() {
		return nil, c.poison(ErrDraining)
	}
	p := &c.ring[c.subSlot]
	if p.live {
		return nil, ErrPipelineFull
	}
	if err := validate(ops); err != nil {
		return nil, err
	}
	if need := headerSizeV3 + len(ops)*RecordSizeV2; need > MaxDatagram {
		return nil, fmt.Errorf("server: batch of %d records needs %d bytes, above the %d-byte message bound", len(ops), need, MaxDatagram)
	}
	id := c.nextID
	c.buf = AppendOpsV3(c.buf[:0], id, ops)
	// Deadline checks ride the backoff tiers: the warm spin tier never
	// reads the clock (a Push retry is tens of nanoseconds, so a
	// time.Now() per spin would dominate the loop), and past it one read
	// per sleep is noise against the sleep itself.
	var deadline time.Time
	spins := 0
	for !c.g.Request().Push(c.buf) {
		if c.g.Draining() {
			return nil, c.poison(ErrDraining)
		}
		spins++
		if spins < shmSpinSweeps {
			runtime.Gosched()
			continue
		}
		if deadline.IsZero() {
			deadline = time.Now().Add(c.timeout)
		} else if !time.Now().Before(deadline) {
			return nil, c.poison(errors.New("server: shm request ring full past timeout (server gone?)"))
		}
		if spins < 4*shmSpinSweeps {
			time.Sleep(shmBusySleep)
		} else {
			time.Sleep(shmIdleSleep)
		}
	}
	c.nextID++
	c.subSlot++
	if c.subSlot == c.depth {
		c.subSlot = 0
	}
	p.id, p.n, p.live, p.done = id, len(ops), true, false
	return p, nil
}

// Wait blocks until p's response arrives and writes its rate indices to
// out (at least p's batch size long). Responses arrive in submission
// order; waiting on a newer Pending parks the older ones, so Wait order
// is free — but each Pending may be waited on exactly once.
func (c *SHMClient) Wait(p *Pending, out []int32) ([]int32, error) {
	if c.err != nil {
		return nil, c.err
	}
	if p == nil || !p.live {
		return nil, errors.New("server: Wait on a Pending that is not in flight")
	}
	// As in Submit, the warm spin tier is clock-free: the deadline is
	// armed when the first sleep tier is reached and checked once per
	// sleep, so a response that lands within the spin window costs zero
	// time.Now() calls.
	var deadline time.Time
	empties := 0
	for !p.done {
		resp, ok := c.g.Response().Peek()
		if !ok {
			if c.g.Draining() {
				// The server answers everything already in the request ring
				// before it exits, so give the response a moment to land
				// before declaring the in-flight window lost.
				if empties > 4*shmSpinSweeps {
					return nil, c.poison(ErrDraining)
				}
			}
			empties++
			if empties < shmSpinSweeps {
				runtime.Gosched()
				continue
			}
			if deadline.IsZero() {
				deadline = time.Now().Add(c.timeout)
			} else if !time.Now().Before(deadline) {
				return nil, c.poison(errors.New("server: shm response timeout (server gone?)"))
			}
			time.Sleep(shmBusySleep)
			continue
		}
		empties = 0
		err := c.acceptSHM(resp)
		c.g.Response().Advance()
		if err != nil {
			return nil, c.poison(err)
		}
	}
	for i, b := range p.rates {
		out[i] = int32(b)
	}
	p.live = false
	return out[:p.n], nil
}

// acceptSHM parses one response message and parks it in its ring slot.
// Any mismatch is a desync: shared-memory messages cannot be lost or
// reordered, so the only explanation is corrupt state — poison.
func (c *SHMClient) acceptSHM(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("server: shm response of %d bytes, need at least 8", len(b))
	}
	id := binary.LittleEndian.Uint32(b[0:4])
	count := binary.LittleEndian.Uint32(b[4:8])
	if id != c.nextRespID {
		return fmt.Errorf("server: response for request %d, expected %d", id, c.nextRespID)
	}
	q := &c.ring[c.respSlot]
	if q.id != id || !q.live || q.done {
		return fmt.Errorf("server: response for request %d, which is not in flight", id)
	}
	if int(count) != q.n || len(b)-8 != q.n {
		return fmt.Errorf("server: response count %d (%d bytes) for a batch of %d", count, len(b)-8, q.n)
	}
	if cap(q.rates) < q.n {
		q.rates = make([]byte, q.n)
	}
	q.rates = q.rates[:q.n]
	copy(q.rates, b[8:])
	q.done = true
	c.nextRespID++
	c.respSlot++
	if c.respSlot == c.depth {
		c.respSlot = 0
	}
	return nil
}

// Decide is Submit immediately followed by its Wait.
func (c *SHMClient) Decide(ops []linkstore.Op, out []int32) ([]int32, error) {
	p, err := c.Submit(ops)
	if err != nil {
		return nil, err
	}
	return c.Wait(p, out)
}

var _ io.Closer = (*SHMClient)(nil)
