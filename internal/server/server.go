// Package server is the softrated decision service: it answers "what rate
// should this link transmit at next?" for batches of per-frame feedback.
// Per-link SoftRate controllers live in a sharded linkstore; the server
// adds the request/response surface — an in-process API for embedding
// (the load generator, simulators, a future MAC offload path) and a
// length-prefixed TCP transport for remote senders (see tcp.go) — plus
// service-level counters.
//
// The paper's controller (§3.3) is inherently an online per-link service:
// every ACK carries a SoftPHY BER estimate and the sender needs the next
// rate before the next frame. The decision itself is a handful of
// comparisons, so the service's job is routing and state residency, not
// computation — hence batches, shards and compact relocatable state.
package server

import (
	"sync/atomic"
	"time"

	"softrate/internal/core"
	"softrate/internal/linkstore"
)

// Config parameterizes a Server.
type Config struct {
	// Store configures the underlying link store. Zero values give a
	// 64-shard store of default controllers with no eviction.
	Store linkstore.Config
}

// Stats are the service-level counters (cumulative, atomically updated).
type Stats struct {
	// Batches is the number of Decide calls (local or remote).
	Batches uint64
	// Frames is the total feedback records processed.
	Frames uint64
	// Kinds counts records per feedback kind.
	Kinds [core.NumKinds]uint64
	// Store is the link store's aggregate view.
	Store linkstore.Stats
}

// Server is the decision service.
type Server struct {
	store *linkstore.Store
	ttl   time.Duration

	batches uint64
	frames  uint64
	kinds   [core.NumKinds]uint64

	tcp tcpState
}

// New builds a Server.
func New(cfg Config) *Server {
	return &Server{store: linkstore.New(cfg.Store), ttl: cfg.Store.TTL}
}

// Store exposes the underlying link store (for embedding scenarios that
// want Peek/EvictIdle).
func (s *Server) Store() *linkstore.Store { return s.store }

// Decide processes one batch of feedback ops in-process and writes the
// chosen rate index for ops[i] to out[i] (which must be at least len(ops)
// long). It is safe for concurrent use. Returns out[:len(ops)].
func (s *Server) Decide(ops []linkstore.Op, out []int32) []int32 {
	// Kind tallies ride along in the store's shard-routing pass (which
	// walks every op anyway), so service counters cost zero extra
	// iterations; they are then folded in with one atomic per kind per
	// batch, not one per record — the counters share a cache line and
	// concurrent Decide callers would otherwise bounce it for every frame.
	var bs linkstore.BatchStats
	res := s.store.ApplyBatchStats(ops, out, &bs)
	atomic.AddUint64(&s.batches, 1)
	atomic.AddUint64(&s.frames, uint64(len(ops)))
	for k, n := range bs.Kinds {
		if n > 0 {
			atomic.AddUint64(&s.kinds[k], n)
		}
	}
	return res
}

// EvictIdle force-sweeps the store (also run periodically by Serve).
func (s *Server) EvictIdle() int { return s.store.EvictIdle() }

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() Stats {
	var out Stats
	out.Batches = atomic.LoadUint64(&s.batches)
	out.Frames = atomic.LoadUint64(&s.frames)
	for k := range out.Kinds {
		out.Kinds[k] = atomic.LoadUint64(&s.kinds[k])
	}
	out.Store = s.store.Stats()
	return out
}

// sweeper periodically evicts idle links until stop is closed. Serve
// starts one when the store has a TTL; in-process embedders rely on the
// store's own incremental sweeps instead.
func (s *Server) sweeper(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.store.EvictIdle()
		case <-stop:
			return
		}
	}
}
