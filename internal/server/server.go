// Package server is the softrated decision service: it answers "what rate
// should this link transmit at next?" for batches of per-frame feedback.
// Per-link SoftRate controllers live in a sharded linkstore; the server
// adds the request/response surface — an in-process API for embedding
// (the load generator, simulators, a future MAC offload path) and a
// length-prefixed TCP transport for remote senders (see tcp.go) — plus
// service-level counters.
//
// The paper's controller (§3.3) is inherently an online per-link service:
// every ACK carries a SoftPHY BER estimate and the sender needs the next
// rate before the next frame. The decision itself is a handful of
// comparisons, so the service's job is routing and state residency, not
// computation — hence batches, shards and compact relocatable state.
package server

import (
	"sync/atomic"
	"time"

	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/linkstore"
	"softrate/internal/obs"
)

// Config parameterizes a Server.
type Config struct {
	// Store configures the underlying link store. Zero values give a
	// 64-shard store of default controllers with no eviction.
	Store linkstore.Config
	// MaxInflight, when > 0, bounds the Decide batches in flight across
	// every transport and in-process caller. Lossless transports (TCP,
	// shm) block at the gate — bounded admission, backpressure through
	// the connection — while the UDP burst loop sheds whole bursts when
	// the gate is saturated (the datagram loss contract: the client
	// times out and keeps its rate). 0 means unbounded.
	MaxInflight int
	// WriteTimeout, when > 0, is the TCP per-connection write deadline: a
	// peer that stops reading long enough for the server's 64 KB write
	// buffer and both socket buffers to fill is evicted after this long
	// blocked, instead of pinning its handler (and the drain path)
	// forever. 0 means no deadline.
	WriteTimeout time.Duration
}

// Stats are the service-level counters (cumulative, atomically updated).
type Stats struct {
	// Batches is the number of Decide calls (local or remote).
	Batches uint64
	// Frames is the total feedback records processed.
	Frames uint64
	// Kinds counts records per feedback kind.
	Kinds [core.NumKinds]uint64
	// Store is the link store's aggregate view.
	Store linkstore.Stats
}

// maxAlgoSlots bounds the per-algorithm metric arrays: slot 0 collects
// mixed batches (ops naming more than one algorithm in one Decide) plus
// any algorithm ID at or past the bound; slots 1.. are the registered
// ctl.Algo IDs (currently 1-5). Sized as an array so the zero-value
// obs.Latency stripes live inline in the Server — no per-batch pointer
// chase and nothing to allocate on the hot path.
const maxAlgoSlots = 8

// algoSlot maps an algorithm ID to its metric slot.
func algoSlot(a ctl.Algo) int {
	if int(a) < maxAlgoSlots {
		return int(a)
	}
	return 0
}

// Server is the decision service.
type Server struct {
	store *linkstore.Store
	ttl   time.Duration
	start time.Time

	batches uint64
	frames  uint64
	kinds   [core.NumKinds]uint64

	// Per-algorithm hot-path metrics, attributed by the batch's uniform
	// resolved algorithm (slot 0 = mixed batches). Recording is
	// allocation-free: counters are single atomics and the latency
	// histograms are stripe-locked (obs.Latency).
	algoBatches [maxAlgoSlots]obs.Counter
	algoFrames  [maxAlgoSlots]obs.Counter
	batchLat    [maxAlgoSlots]obs.Latency
	opLat       [maxAlgoSlots]obs.Latency

	tcp tcpState
	// Datagram transport counters (the lifecycle — conns, drain, stop —
	// is shared in tcp; only the accounting is per transport).
	udp dgramState
	shm dgramState

	// gate is the Decide admission semaphore (nil = unbounded): a
	// buffered channel of MaxInflight tokens, so acquire/release are
	// allocation-free and len/cap double as the inflight/limit gauges.
	gate         chan struct{}
	writeTimeout time.Duration
}

// New builds a Server.
func New(cfg Config) *Server {
	s := &Server{store: linkstore.New(cfg.Store), ttl: cfg.Store.TTL, start: time.Now(),
		writeTimeout: cfg.WriteTimeout}
	if cfg.MaxInflight > 0 {
		s.gate = make(chan struct{}, cfg.MaxInflight)
	}
	return s
}

// gateSaturated reports that the admission gate exists and every token is
// taken — the UDP burst loop's shed signal. It is a racy read by design:
// admission is decided per burst without taking the gate, so a burst that
// squeaks past a momentarily full gate just blocks briefly in Decide.
func (s *Server) gateSaturated() bool {
	return s.gate != nil && len(s.gate) == cap(s.gate)
}

// Store exposes the underlying link store (for embedding scenarios that
// want Peek/EvictIdle).
func (s *Server) Store() *linkstore.Store { return s.store }

// Decide processes one batch of feedback ops in-process and writes the
// chosen rate index for ops[i] to out[i] (which must be at least len(ops)
// long). It is safe for concurrent use. Returns out[:len(ops)].
func (s *Server) Decide(ops []linkstore.Op, out []int32) []int32 {
	// Kind tallies ride along in the store's shard-routing pass (which
	// walks every op anyway), so service counters cost zero extra
	// iterations; they are then folded in with one atomic per kind per
	// batch, not one per record — the counters share a cache line and
	// concurrent Decide callers would otherwise bounce it for every frame.
	// Bounded admission: lossless callers queue here (FIFO per channel
	// semantics) rather than oversubscribing the store. Channel send and
	// receive of struct{} never allocate, so the warm path stays 0 allocs
	// with the gate on.
	if s.gate != nil {
		s.gate <- struct{}{}
	}
	var bs linkstore.BatchStats
	t0 := time.Now()
	res := s.store.ApplyBatchStats(ops, out, &bs)
	d := time.Since(t0)
	if s.gate != nil {
		<-s.gate
	}
	atomic.AddUint64(&s.batches, 1)
	atomic.AddUint64(&s.frames, uint64(len(ops)))
	for k, n := range bs.Kinds {
		if n > 0 {
			atomic.AddUint64(&s.kinds[k], n)
		}
	}
	// Latency attribution: a uniform batch lands on its algorithm's slot,
	// a mixed batch on slot 0. The per-op histogram records each op's
	// share of the batch (d/n observed n times) — per-op cost quantiles
	// weighted by batch size, without a per-op clock read.
	slot := 0
	if !bs.Mixed {
		slot = algoSlot(bs.Algo)
	}
	s.algoBatches[slot].Inc()
	s.batchLat[slot].Observe(d)
	if n := uint64(len(ops)); n > 0 {
		s.algoFrames[slot].Add(n)
		s.opLat[slot].ObserveN(d/time.Duration(n), n)
	}
	return res
}

// EvictIdle force-sweeps the store (also run periodically by Serve).
func (s *Server) EvictIdle() int { return s.store.EvictIdle() }

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() Stats {
	var out Stats
	out.Batches = atomic.LoadUint64(&s.batches)
	out.Frames = atomic.LoadUint64(&s.frames)
	for k := range out.Kinds {
		out.Kinds[k] = atomic.LoadUint64(&s.kinds[k])
	}
	out.Store = s.store.Stats()
	return out
}

// sweeper periodically evicts idle links until stop is closed. Serve
// starts one when the store has a TTL; in-process embedders rely on the
// store's own incremental sweeps instead.
func (s *Server) sweeper(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.store.EvictIdle()
		case <-stop:
			return
		}
	}
}
