package faultfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"syscall"
	"testing"
)

// driveSequence runs one fixed operation script against a fresh injector
// and returns a transcript of outcomes — bytes written per op and the
// error kind observed — plus the file's final contents. Two injectors
// with the same seed and rates must produce identical transcripts.
func driveSequence(t *testing.T, dir string, seed uint64, r Rates) (string, []byte) {
	t.Helper()
	in := Wrap(OS{}, seed, r)
	f, err := in.Create(filepath.Join(dir, "seq.dat"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	var log bytes.Buffer
	off := int64(0)
	for i := 0; i < 200; i++ {
		p := make([]byte, 16+i%48)
		for j := range p {
			p[j] = byte(i + j)
		}
		n, err := f.WriteAt(p, off)
		fmt.Fprintf(&log, "w%d n=%d err=%v\n", i, n, err)
		off += int64(n)
		if i%17 == 0 {
			fmt.Fprintf(&log, "s%d err=%v\n", i, f.Sync())
		}
	}
	buf := make([]byte, off)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatalf("final ReadAt: %v", err)
	}
	st := in.Stats()
	fmt.Fprintf(&log, "stats=%+v\n", st)
	return log.String(), buf
}

// TestDeterministicSchedule: same seed, same rates, same operation
// sequence → the same faults in the same places, byte-for-byte. This is
// the property -chaos-seed reproduction rests on.
func TestDeterministicSchedule(t *testing.T) {
	r := Rates{WriteErr: 0.2, ShortWrite: 0.15, SyncErr: 0.3}
	logA, bytesA := driveSequence(t, t.TempDir(), 42, r)
	logB, bytesB := driveSequence(t, t.TempDir(), 42, r)
	if logA != logB {
		t.Fatalf("same seed produced different fault transcripts:\n--- A ---\n%s--- B ---\n%s", logA, logB)
	}
	if !bytes.Equal(bytesA, bytesB) {
		t.Fatalf("same seed left different bytes on disk (%d vs %d)", len(bytesA), len(bytesB))
	}
}

// TestShortWritePersistsStrictPrefix: a torn write must land 1..len-1
// bytes — exactly the prefix reported — and then fail with an injected
// I/O error, never a clean success and never zero bytes (that would be
// WriteErr's shape, not a tear).
func TestShortWritePersistsStrictPrefix(t *testing.T) {
	in := Wrap(OS{}, 7, Rates{ShortWrite: 1})
	f, err := in.Create(filepath.Join(t.TempDir(), "torn.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := make([]byte, 100)
	for i := range p {
		p[i] = byte(i + 1)
	}
	n, err := f.WriteAt(p, 0)
	if !IsInjected(err) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write returned %v, want injected EIO", err)
	}
	if n < 1 || n >= len(p) {
		t.Fatalf("torn write persisted %d of %d bytes, want a strict prefix", n, len(p))
	}
	got := make([]byte, n)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("reading back the prefix: %v", err)
	}
	if !bytes.Equal(got, p[:n]) {
		t.Fatalf("persisted bytes differ from the written prefix")
	}
	if sz, err := f.Size(); err != nil || sz != int64(n) {
		t.Fatalf("file size %d (err %v), want exactly the torn prefix %d", sz, err, n)
	}
	if st := in.Stats(); st.ShortWrites != 1 {
		t.Fatalf("stats counted %d short writes, want 1", st.ShortWrites)
	}
}

// TestWriteBudgetENOSPC: writes past the byte budget persist what fits
// and fail with disk-full semantics that errors.Is-match ENOSPC.
func TestWriteBudgetENOSPC(t *testing.T) {
	in := Wrap(OS{}, 1, Rates{WriteBudget: 10})
	f, err := in.Create(filepath.Join(t.TempDir(), "full.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n, err := f.WriteAt(make([]byte, 8), 0); n != 8 || err != nil {
		t.Fatalf("write within budget: n=%d err=%v", n, err)
	}
	n, err := f.WriteAt([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 8)
	if n != 2 || !errors.Is(err, ErrNoSpace) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write past budget: n=%d err=%v, want n=2 and injected ENOSPC", n, err)
	}
	if n, err := f.WriteAt([]byte{9}, 10); n != 0 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write on a full disk: n=%d err=%v, want 0 and ENOSPC", n, err)
	}
	if st := in.Stats(); st.NoSpace != 2 {
		t.Fatalf("stats counted %d ENOSPC faults, want 2", st.NoSpace)
	}
}

// TestArmDisarm: a disarmed injector is a pure passthrough (the
// healthy-at-startup shape both binaries rely on to open the cold tier
// cleanly before arming chaos), and arming later turns the schedule on.
func TestArmDisarm(t *testing.T) {
	in := Wrap(OS{}, 3, Rates{WriteErr: 1, ReadErr: 1, WriteBudget: 4})
	in.Arm(false)
	f, err := in.Create(filepath.Join(t.TempDir(), "armed.dat"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Disarmed: certain-probability faults never fire and the budget is
	// not charged.
	if n, err := f.WriteAt(make([]byte, 64), 0); n != 64 || err != nil {
		t.Fatalf("disarmed write: n=%d err=%v", n, err)
	}
	if _, err := f.ReadAt(make([]byte, 8), 0); err != nil {
		t.Fatalf("disarmed read: %v", err)
	}
	if st := in.Stats(); st != (Stats{}) {
		t.Fatalf("disarmed injector delivered faults: %+v", st)
	}
	in.Arm(true)
	if _, err := f.WriteAt([]byte{1}, 64); !errors.Is(err, ErrIO) {
		t.Fatalf("armed write: %v, want injected EIO", err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrIO) {
		t.Fatalf("armed read: %v, want injected EIO", err)
	}
}

// TestIsInjected: classification must hold through wrapping, match the
// underlying errnos, and reject unrelated errors.
func TestIsInjected(t *testing.T) {
	if !IsInjected(ErrIO) || !IsInjected(ErrNoSpace) {
		t.Fatal("sentinels not classified as injected")
	}
	if !IsInjected(fmt.Errorf("spill: %w", ErrIO)) {
		t.Fatal("wrapped injected error not classified")
	}
	if IsInjected(io.ErrUnexpectedEOF) || IsInjected(nil) {
		t.Fatal("unrelated error classified as injected")
	}
	if !errors.Is(ErrIO, syscall.EIO) || !errors.Is(ErrNoSpace, syscall.ENOSPC) {
		t.Fatal("injected errors do not match their errnos")
	}
}

// TestChaosRatesReadPathClean: the standard chaos mix must never touch
// the read path — a read fault changes decisions (fresh-controller
// fallthrough), which would break the chaos smoke's exact-verify.
func TestChaosRatesReadPathClean(t *testing.T) {
	r := ChaosRates(0.25)
	if r.ReadErr != 0 {
		t.Fatalf("ChaosRates sets ReadErr=%v; the exact-verify contract needs a clean read path", r.ReadErr)
	}
	if r.WriteErr == 0 || r.ShortWrite == 0 || r.SyncErr == 0 || r.Stall == 0 {
		t.Fatalf("ChaosRates left write-path faults off: %+v", r)
	}
	if ChaosRates(0) != (Rates{}) {
		t.Fatal("ChaosRates(0) should inject nothing")
	}
}
