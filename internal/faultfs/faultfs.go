// Package faultfs is the storage plane's file abstraction plus a
// deterministic fault injector over it. The cold tier (internal/coldstore)
// does all its I/O through the File/FS interfaces here, so a chaos run can
// make the "disk" return EIO mid-spill, run out of space, tear a write,
// fail an fsync, or stall — without test-only forks in the store and
// without touching a real device.
//
// Injection is reproducible by construction: an Injector draws one
// SplitMix64 value per fault decision from a single seeded stream, so the
// same seed and the same logical sequence of file operations produce the
// same faults on every run. (The cold tier serializes its file operations
// under one store mutex, which makes the operation sequence itself
// deterministic for a deterministic workload — the property the chaos
// smoke's exact-verify depends on.)
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"softrate/internal/bitutil"
)

// File is the slice of *os.File the cold tier uses: positional reads and
// writes, truncation, sync, close, and size. No cursor, no append mode —
// every offset is explicit, which is also what makes the injector's
// short-write semantics well defined.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Size() (int64, error)
}

// FS is the directory-level surface: everything the cold tier does to the
// filesystem besides per-file I/O.
type FS interface {
	// MkdirAll creates dir (and parents) if absent.
	MkdirAll(dir string) error
	// ReadDir lists the names of dir's entries.
	ReadDir(dir string) ([]string, error)
	// Open opens an existing file read-write.
	Open(path string) (File, error)
	// Create creates a new file read-write, failing if it exists.
	Create(path string) (File, error)
	// Remove deletes a file.
	Remove(path string) error
}

// Injected fault errors. Both wrap the matching errno, so errors.Is works
// against either the sentinel or syscall.EIO / syscall.ENOSPC.
var (
	ErrIO      = fmt.Errorf("faultfs: injected I/O fault: %w", syscall.EIO)
	ErrNoSpace = fmt.Errorf("faultfs: injected disk full: %w", syscall.ENOSPC)
)

// OS is the passthrough FS over the real filesystem.
type OS struct{}

type osFile struct{ f *os.File }

func (o osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osFile) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o osFile) Sync() error                              { return o.f.Sync() }
func (o osFile) Close() error                             { return o.f.Close() }
func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}

// Open implements FS.
func (OS) Open(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Create implements FS.
func (OS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// Rates is a fault schedule: per-operation probabilities in [0, 1] plus
// the stall duration and the ENOSPC byte budget. The zero value injects
// nothing.
type Rates struct {
	// ReadErr fails a ReadAt with ErrIO. NOTE: the cold tier answers a
	// failed restore with a fresh controller, so read faults change
	// decisions by design — leave this zero in exact-verify chaos runs
	// and use it only in tests that assert the fallthrough itself.
	ReadErr float64
	// WriteErr fails a WriteAt with ErrIO before any byte lands.
	WriteErr float64
	// ShortWrite persists a strict prefix of a WriteAt, then fails with
	// ErrIO — the torn-write shape recovery must truncate away.
	ShortWrite float64
	// SyncErr fails a Sync with ErrIO.
	SyncErr float64
	// Stall sleeps StallDur before a read, write or sync proceeds.
	Stall    float64
	StallDur time.Duration
	// WriteBudget, when > 0, bounds the total bytes writable through the
	// injector; writes past it persist what fits and fail with
	// ErrNoSpace (disk-full semantics).
	WriteBudget int64
}

// ChaosRates is the standard end-to-end chaos mix for a given fault rate:
// write errors, torn writes, failed syncs and small stalls — everything
// that can hit the spill/compaction path — with the read path left clean
// so answered decisions stay byte-identical (a failed spill keeps state
// in RAM; a failed restore would not). softrated -chaos-cold and
// softrate-loadgen -chaos-cold both build their schedule through this, so
// an in-process run and a forwarded -serve-exec run inject the same way.
func ChaosRates(rate float64) Rates {
	if rate <= 0 {
		return Rates{}
	}
	return Rates{
		WriteErr:   rate,
		ShortWrite: rate / 2,
		SyncErr:    rate,
		Stall:      rate,
		StallDur:   2 * time.Millisecond,
	}
}

// Stats counts the faults an Injector has delivered, by kind.
type Stats struct {
	ReadFaults  uint64 `json:"read_faults"`
	WriteFaults uint64 `json:"write_faults"`
	ShortWrites uint64 `json:"short_writes"`
	SyncFaults  uint64 `json:"sync_faults"`
	Stalls      uint64 `json:"stalls"`
	NoSpace     uint64 `json:"no_space"`
}

// Injector is an FS that wraps another FS and injects faults from a
// seeded schedule. Safe for concurrent use; concurrent callers serialize
// on the PRNG, so determinism additionally requires the caller to
// serialize the operations themselves (the cold tier does).
type Injector struct {
	base  FS
	rates Rates
	armed atomic.Bool

	mu      sync.Mutex
	prng    uint64
	written int64 // bytes consumed from WriteBudget

	readFaults  atomic.Uint64
	writeFaults atomic.Uint64
	shortWrites atomic.Uint64
	syncFaults  atomic.Uint64
	stalls      atomic.Uint64
	noSpace     atomic.Uint64
}

// Wrap builds an Injector over base with the given seed and schedule.
// The injector starts armed; see Arm.
func Wrap(base FS, seed uint64, r Rates) *Injector {
	in := &Injector{base: base, rates: r, prng: seed}
	in.armed.Store(true)
	return in
}

// Arm enables or disables injection. While disarmed the injector is a
// pure passthrough and draws nothing from the schedule stream, so a
// harness can open and recover a store cleanly, arm, and still get the
// same armed fault sequence for a given seed — the "healthy at startup,
// faulty under load" chaos shape.
func (in *Injector) Arm(on bool) { in.armed.Store(on) }

// Stats snapshots the delivered-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		ReadFaults:  in.readFaults.Load(),
		WriteFaults: in.writeFaults.Load(),
		ShortWrites: in.shortWrites.Load(),
		SyncFaults:  in.syncFaults.Load(),
		Stalls:      in.stalls.Load(),
		NoSpace:     in.noSpace.Load(),
	}
}

// roll draws the next schedule value and reports whether an event with
// probability p fires. One draw per call: the stream position depends
// only on how many decisions have been made, never on their outcomes.
func (in *Injector) roll(p float64) bool {
	if p <= 0 || !in.armed.Load() {
		return false
	}
	in.mu.Lock()
	in.prng += 0x9e3779b97f4a7c15 // SplitMix64 increment; Mix64 finalizes
	v := bitutil.Mix64(in.prng)
	in.mu.Unlock()
	return float64(v>>11)/(1<<53) < p
}

// maybeStall sleeps the schedule's stall duration when the stall event
// fires for this operation.
func (in *Injector) maybeStall() {
	if in.roll(in.rates.Stall) {
		in.stalls.Add(1)
		if in.rates.StallDur > 0 {
			time.Sleep(in.rates.StallDur)
		}
	}
}

// chargeWrite consumes n bytes of the write budget, returning how many
// fit. With no budget configured everything fits.
func (in *Injector) chargeWrite(n int) int {
	if in.rates.WriteBudget <= 0 || !in.armed.Load() {
		return n
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	rem := in.rates.WriteBudget - in.written
	if rem < 0 {
		rem = 0
	}
	if int64(n) <= rem {
		in.written += int64(n)
		return n
	}
	in.written = in.rates.WriteBudget
	return int(rem)
}

// MkdirAll implements FS (never faulted: directory metadata is not the
// failure surface under study).
func (in *Injector) MkdirAll(dir string) error { return in.base.MkdirAll(dir) }

// ReadDir implements FS (never faulted).
func (in *Injector) ReadDir(dir string) ([]string, error) { return in.base.ReadDir(dir) }

// Open implements FS.
func (in *Injector) Open(path string) (File, error) {
	f, err := in.base.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f}, nil
}

// Create implements FS.
func (in *Injector) Create(path string) (File, error) {
	f, err := in.base.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f}, nil
}

// Remove implements FS (never faulted).
func (in *Injector) Remove(path string) error { return in.base.Remove(path) }

// faultFile wraps one File with its Injector's schedule.
type faultFile struct {
	in *Injector
	f  File
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	in := ff.in
	in.maybeStall()
	if in.roll(in.rates.ReadErr) {
		in.readFaults.Add(1)
		return 0, ErrIO
	}
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	in := ff.in
	in.maybeStall()
	if in.roll(in.rates.WriteErr) {
		in.writeFaults.Add(1)
		return 0, ErrIO
	}
	if len(p) > 1 && in.roll(in.rates.ShortWrite) {
		// Tear the write: persist a strict prefix, then fail. The prefix
		// length comes from the same schedule stream, so it reproduces.
		in.shortWrites.Add(1)
		in.mu.Lock()
		in.prng += 0x9e3779b97f4a7c15
		cut := 1 + int(bitutil.Mix64(in.prng)%uint64(len(p)-1))
		in.mu.Unlock()
		cut = in.chargeWrite(cut)
		n, err := ff.f.WriteAt(p[:cut], off)
		if err != nil {
			return n, err
		}
		return n, ErrIO
	}
	fit := in.chargeWrite(len(p))
	if fit < len(p) {
		in.noSpace.Add(1)
		n, err := ff.f.WriteAt(p[:fit], off)
		if err != nil {
			return n, err
		}
		return n, ErrNoSpace
	}
	return ff.f.WriteAt(p, off)
}

func (ff *faultFile) Truncate(size int64) error { return ff.f.Truncate(size) }

func (ff *faultFile) Sync() error {
	in := ff.in
	in.maybeStall()
	if in.roll(in.rates.SyncErr) {
		in.syncFaults.Add(1)
		return ErrIO
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error         { return ff.f.Close() }
func (ff *faultFile) Size() (int64, error) { return ff.f.Size() }

// IsInjected reports whether err is (or wraps) an injected faultfs error.
func IsInjected(err error) bool {
	return errors.Is(err, ErrIO) || errors.Is(err, ErrNoSpace)
}
