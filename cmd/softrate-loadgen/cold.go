// Cold-churn workload: -cold-links adds a large per-algorithm population
// that is walked round-robin behind the hot trace-driven set. Each cold
// link is touched once per lap and then left idle; with a lap far longer
// than the server's TTL every touch finds the link evicted — and, when
// the server has a -cold-dir tier, spilled to disk — so the workload
// drives continuous evict → spill → restore traffic through a hot set of
// bounded size. This is the idle-skew shape of a real fleet: millions of
// known links, a small working set actually transmitting.
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"softrate/internal/coldstore"
	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/linkstore"
)

// coldPop is one client's exclusive slice of the cold population: a
// contiguous link-ID range nobody else touches, so the -verify mirror
// needs no locking. The mirror is a flat slab of encoded states (one
// StateLen-wide slot per link) advanced through the same
// DecodeState → Apply → EncodeState path the store itself uses — the
// cheapest honest checker for a population too large for live
// controllers each.
type coldPop struct {
	algo   ctl.Algo
	base   uint64 // link ID of index 0
	n      int
	cursor int
	pass   int // completed laps over the population

	// A lap over the population is paced to take at least minLap
	// (2×TTL): every link is then idle for more than the TTL between
	// touches, so each touch finds it evicted. Without the gate a fast
	// server laps the population before anything idles out and the
	// "cold" links never leave the hot map.
	minLap    time.Duration
	nextLapAt time.Time

	rates []int8

	// -verify mirror (nil fields when verification is off).
	w       int
	states  []byte
	seen    []bool
	scratch ctl.Controller
	fresh   []byte
}

func newColdPop(spec ctl.Spec, base uint64, n int, minLap time.Duration, verify bool) *coldPop {
	p := &coldPop{algo: spec.ID, base: base, n: n, minLap: minLap, rates: make([]int8, n)}
	if verify {
		p.w = spec.StateLen
		p.states = make([]byte, n*p.w)
		p.seen = make([]bool, n)
		p.scratch = spec.New()
		p.fresh = make([]byte, p.w)
		p.scratch.EncodeState(p.fresh)
	}
	return p
}

// next emits the next churn op, or reports false while the lap gate is
// holding the cursor at the start of a too-fast lap. Laps alternate
// between a loss pass (silent losses push rates down) and a clean pass
// (low-BER delivered frames pull them back up), so cold state keeps
// moving through real transitions instead of pinning at the floor; the
// per-link SNR spread keeps the SNR-driven algorithms exercised too.
// Everything is a pure function of (link index, lap parity), so the
// mirror sees identical feedback.
func (p *coldPop) next(now time.Time) (linkstore.Op, bool) {
	if p.cursor == 0 {
		if now.Before(p.nextLapAt) {
			return linkstore.Op{}, false
		}
		p.nextLapAt = now.Add(p.minLap)
	}
	k := p.cursor
	p.cursor++
	if p.cursor == p.n {
		p.cursor = 0
		p.pass++
	}
	op := linkstore.Op{
		LinkID:    p.base + uint64(k),
		Algo:      p.algo,
		RateIndex: int32(p.rates[k]),
		SNRdB:     float32(5 + k%25),
	}
	if p.pass&1 == 0 {
		op.Kind = core.KindSilentLoss
	} else {
		op.Kind = core.KindBER
		op.BER = 1e-5
		op.Delivered = true
	}
	return op, true
}

// mirror advances cold link k's encoded-state checker through op and
// returns the rate a bare controller decides.
func (p *coldPop) mirror(k int, op linkstore.Op) int {
	st := p.states[k*p.w : (k+1)*p.w]
	if !p.seen[k] {
		copy(st, p.fresh)
		p.seen[k] = true
	}
	if err := p.scratch.DecodeState(st); err != nil {
		// The slab only ever holds our own EncodeState output.
		panic(fmt.Sprintf("loadgen: cold mirror state corrupt for link %d: %v", p.base+uint64(k), err))
	}
	want := p.scratch.Apply(ctl.Feedback{
		Kind:      op.Kind,
		RateIndex: int(op.RateIndex),
		BER:       op.BER,
		SNRdB:     float64(op.SNRdB),
		Delivered: op.Delivered,
	})
	p.scratch.EncodeState(st)
	return want
}

// makeColdPops carves the -cold-links population into one exclusive
// slice per client, namespaced above the hot IDs (hot links use the low
// 32 bits of the per-algorithm space; cold links start at 1<<32).
func makeColdPops(algos []ctl.Spec, opt options) []*coldPop {
	minLap := 2 * opt.ttl
	pops := make([]*coldPop, len(algos)*opt.clients)
	for ai, spec := range algos {
		per, rem := opt.coldLinks/opt.clients, opt.coldLinks%opt.clients
		start := 0
		for i := 0; i < opt.clients; i++ {
			n := per
			if i < rem {
				n++
			}
			if n == 0 {
				continue
			}
			base := uint64(spec.ID)<<40 | uint64(1)<<32 | uint64(start)
			pops[ai*opt.clients+i] = newColdPop(spec, base, n, minLap, opt.verify)
			start += n
		}
	}
	return pops
}

// microResult is one arm of the -micro linkstore A/B: evict/restore
// churn throughput with the RAM archive vs the disk-backed cold tier.
type microResult struct {
	Name         string  `json:"name"`
	Algo         string  `json:"algo"`
	Links        int     `json:"links"`
	Window       int     `json:"window"`
	Cycles       int     `json:"cycles"`
	LinksPerSec  float64 `json:"links_per_sec"`
	DiskSpills   uint64  `json:"disk_spills,omitempty"`
	DiskRestores uint64  `json:"disk_restores,omitempty"`
}

// runMicro drives the linkstore directly (no transport, fake clock)
// through the same rotating-window churn as the committed Go benchmarks
// in internal/linkstore: every touched link is a restore, every cycle
// evicts the previous window. Three arms: RAM archive, cold tier, and
// cold tier with the widest state (SampleRate ~1.7 KB).
func runMicro(dur time.Duration) ([]microResult, error) {
	var out []microResult
	arms := []struct {
		name   string
		algo   ctl.Algo
		links  int
		window int
		cold   bool
	}{
		{"evict-restore/ram-archive", ctl.AlgoSoftRate, 8192, 512, false},
		{"evict-restore/cold-tier", ctl.AlgoSoftRate, 8192, 512, true},
		{"evict-restore/cold-tier-wide", ctl.AlgoSampleRate, 2048, 256, true},
	}
	for _, arm := range arms {
		r, err := microChurn(arm.name, arm.algo, arm.links, arm.window, arm.cold, dur)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func specByID(id ctl.Algo) ctl.Spec {
	for _, s := range ctl.Specs() {
		if s.ID == id {
			return s
		}
	}
	panic(fmt.Sprintf("loadgen: algorithm %d not registered", id))
}

func microChurn(name string, algo ctl.Algo, nLinks, window int, useCold bool, dur time.Duration) (microResult, error) {
	res := microResult{Name: name, Algo: specByID(algo).Name, Links: nLinks, Window: window}

	var mu sync.Mutex
	var now int64
	clock := func() int64 { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now += int64(d); mu.Unlock() }

	var cold *coldstore.Store
	cfg := linkstore.Config{Shards: 64, TTL: time.Second, Clock: clock, ExpectedLinks: nLinks}
	if useCold {
		dir, err := os.MkdirTemp("", "softrate-micro-")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
		cold, err = coldstore.Open(coldstore.Config{Dir: dir})
		if err != nil {
			return res, err
		}
		defer cold.Close()
		cfg.Cold = cold
		cfg.ColdFront = 2 * window // front smaller than the population: restores hit disk
	}
	st := linkstore.New(cfg)

	const batch = 128
	ops := make([]linkstore.Op, batch)
	outBuf := make([]int32, batch)
	pos := 0
	cycle := func() {
		for base := 0; base < window; base += batch {
			n := 0
			for i := 0; i < batch && base+i < window; i++ {
				ops[n] = linkstore.Op{LinkID: uint64((pos+base+i)%nLinks) + 1, Algo: algo, Kind: core.KindSilentLoss}
				n++
			}
			st.ApplyBatch(ops[:n], outBuf)
		}
		pos = (pos + window) % nLinks
		advance(2 * time.Second)
		st.EvictIdle()
	}
	for i := 0; i < nLinks/window+2; i++ {
		cycle() // populate and push the whole population through eviction
	}
	start := time.Now()
	for time.Since(start) < dur {
		cycle()
		res.Cycles++
	}
	res.LinksPerSec = float64(window) * float64(res.Cycles) / time.Since(start).Seconds()
	if cold != nil {
		cs := cold.Stats()
		res.DiskSpills, res.DiskRestores = cs.Spills, cs.Restores
		if cs.Restores == 0 {
			return res, fmt.Errorf("microbench %s never restored from disk", name)
		}
	}
	return res, nil
}
