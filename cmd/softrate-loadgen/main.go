// Command softrate-loadgen replays link traces against the softrated
// decision service and reports sustained decision throughput, latency
// quantiles and store churn. It is the closed adaptation loop at scale:
// per link it walks a trace.FrameIter (decide → transmit → observe), feeds
// the observed outcome back, and uses the server's answer as the next
// frame's rate.
//
// Any registered algorithm can be served (-algo), and "-algo all" (or a
// comma list) runs a head-to-head: identical trace.FramesMix sequences
// replayed through every named algorithm concurrently against one store,
// with per-algorithm throughput, latency and chosen-rate distributions.
//
// Usage:
//
//	softrate-loadgen -clients 4 -links 10000 -duration 10s          # in-process server
//	softrate-loadgen -addr 127.0.0.1:7447 -clients 8 -links 100000  # against softrated
//	softrate-loadgen -tcp -pipeline 8                               # loopback TCP, 8 batches in flight per conn
//	softrate-loadgen -mix hidden -verify                            # hidden-terminal mix + determinism check
//	softrate-loadgen -algo all -verify -prewarm                     # §6.1 head-to-head, warm store, every decision checked
//	softrate-loadgen -format json -bench-out BENCH_loadgen.json     # machine-readable report
//
// -pipeline N keeps N batches in flight per TCP connection (the v3
// framing): each client's links are partitioned into N independent
// closed loops, so every link still sees its previous decision before its
// next frame while the connection never runs stop-and-wait. -prewarm
// drives every link's first event through the server before the timed
// region, so the report measures the steady state rather than map and
// slab growth.
//
// With -verify every decision is checked byte-for-byte against a bare
// per-link ctl controller fed the identical feedback sequence — the
// acceptance property of the decision service, for every algorithm,
// including across TTL evictions (archived state makes them transparent).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"softrate/internal/benchtrend"
	"softrate/internal/channel"
	"softrate/internal/coldstore"
	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/faultfs"
	"softrate/internal/linkstore"
	"softrate/internal/rate"
	"softrate/internal/server"
	"softrate/internal/server/shmring"
	"softrate/internal/stats"
	"softrate/internal/trace"
)

type options struct {
	addr     string
	algo     string
	clients  int
	links    int
	duration time.Duration
	batch    int
	mix      string
	shards   int
	ttl      time.Duration
	idleFrac float64
	seed     int64
	verify   bool
	minRate  float64
	format   string
	benchOut string
	trendOut string
	pipeline int
	prewarm  bool
	workers  int
	tcpLoop  bool

	transport  string
	serveExec  string
	shmPath    string
	shmBytes   int
	udpDrop    float64
	udpTimeout time.Duration

	coldLinks    int
	hotFrac      float64
	coldDir      string
	coldFront    int
	compactRatio float64
	minSpills    uint64
	micro        bool

	maxInflight  int
	writeTimeout time.Duration
	chaosCold    float64
	chaosSeed    int64
	stallConns   int
}

func main() {
	var opt options
	flag.StringVar(&opt.addr, "addr", "", "softrated TCP address; empty runs an in-process server")
	flag.StringVar(&opt.algo, "algo", "softrate", "algorithm(s) to drive: one of "+strings.Join(ctl.Names(), "|")+", a comma list, or 'all' (head-to-head over identical trace replays)")
	flag.IntVar(&opt.clients, "clients", 4, "concurrent load-generating clients per algorithm")
	flag.IntVar(&opt.links, "links", 10000, "concurrent links per algorithm")
	flag.DurationVar(&opt.duration, "duration", 10*time.Second, "run length")
	flag.IntVar(&opt.batch, "batch", 128, "feedback records per request batch")
	flag.StringVar(&opt.mix, "mix", "mobile", "workload mix: clean | mobile | hidden")
	flag.IntVar(&opt.shards, "shards", 64, "in-process server: link store shards")
	flag.DurationVar(&opt.ttl, "ttl", 500*time.Millisecond, "in-process server: idle link TTL (0 = never evict)")
	flag.Float64Var(&opt.idleFrac, "idle-frac", 0.1, "fraction of links that transmit rarely (exercises eviction)")
	flag.Int64Var(&opt.seed, "seed", 1, "base PRNG seed (trace generation and replay)")
	flag.BoolVar(&opt.verify, "verify", false, "check every decision against a bare per-link controller (with -addr the server must be fresh: reused link IDs carry state from earlier runs)")
	flag.Float64Var(&opt.minRate, "min-rate", 0, "fail unless this many decisions/sec are sustained (summed over algorithms)")
	flag.StringVar(&opt.format, "format", "text", "report format: text | json")
	flag.StringVar(&opt.benchOut, "bench-out", "", "also write the JSON report to this file (e.g. BENCH_loadgen.json)")
	flag.StringVar(&opt.trendOut, "trend-out", "", "append a stamped throughput record (git sha, go version, cpus) to this JSONL trend ledger (e.g. BENCH_TREND.jsonl); gate it with softrate-benchtrend")
	flag.IntVar(&opt.pipeline, "pipeline", 0, "batches in flight per TCP connection (v3 framing; <=1 = classic stop-and-wait; needs -addr or -tcp)")
	flag.BoolVar(&opt.prewarm, "prewarm", false, "touch every link once before the timed region (pre-grown maps/slabs; measures steady state)")
	flag.IntVar(&opt.workers, "workers", 0, "in-process/loopback store: fan each batch's shard visits across this many goroutines (<=1 = sequential)")
	flag.BoolVar(&opt.tcpLoop, "tcp", false, "serve over a loopback TCP listener even without -addr (measures the transport on one host)")
	flag.StringVar(&opt.transport, "transport", "", "transport to drive: tcp | udp | shm (empty = in-process, or tcp when -addr/-tcp is set)")
	flag.StringVar(&opt.serveExec, "serve-exec", "", "fork this softrated binary as a separate server process and drive it over -transport (multi-process bench mode)")
	flag.StringVar(&opt.shmPath, "shm", "", "attach to an external server's shm ring files at this path prefix (connect-only; needs -transport shm)")
	flag.IntVar(&opt.shmBytes, "shm-ring-bytes", 0, "per-ring capacity for in-process/forked shm servers (0 = default)")
	flag.Float64Var(&opt.udpDrop, "udp-drop", 0, "UDP chaos shim: drop this fraction of response datagrams client-side (deterministic per -seed); timed-out decisions keep the current rate")
	flag.DurationVar(&opt.udpTimeout, "udp-timeout", 20*time.Millisecond, "UDP: how long to wait for a response before treating the decision as lost")
	flag.IntVar(&opt.coldLinks, "cold-links", 0, "per-algorithm cold population churned round-robin behind the hot set: each link is touched once per lap and idles past the TTL before its next turn, so every touch is an evict/restore (0 = off)")
	flag.Float64Var(&opt.hotFrac, "hot-frac", 0.1, "with -cold-links: fraction of each batch replaying the hot trace-driven links; the rest churns the cold population")
	flag.StringVar(&opt.coldDir, "cold-dir", "", "in-process/loopback server (or the -serve-exec child): spill evicted links to a disk cold tier in this directory")
	flag.IntVar(&opt.coldFront, "cold-front", 0, "with -cold-dir: RAM-archive link budget in front of the cold tier (0 = server default)")
	flag.Float64Var(&opt.compactRatio, "compact-ratio", 0, "with -cold-dir: dead-byte ratio that triggers cold segment compaction (0 = server default)")
	flag.Uint64Var(&opt.minSpills, "min-spills", 0, "fail unless the in-process server spilled at least this many links to the cold tier")
	flag.BoolVar(&opt.micro, "micro", false, "also run the in-process linkstore evict/restore A/B microbench (RAM archive vs cold tier) and embed it in the report")
	flag.IntVar(&opt.maxInflight, "max-inflight", 0, "served store (in-process, loopback or -serve-exec child): bound Decide batches in flight; lossless transports queue, UDP sheds (0 = unbounded)")
	flag.DurationVar(&opt.writeTimeout, "tcp-write-timeout", 0, "served store: evict a TCP peer write-blocked this long (0 = never)")
	flag.Float64Var(&opt.chaosCold, "chaos-cold", 0, "with -cold-dir: inject write-path faults into the cold tier at this per-op probability (spills fail and retry; answered decisions stay exact)")
	flag.Int64Var(&opt.chaosSeed, "chaos-seed", 1, "seed for the -chaos-cold fault schedule (same seed = same faults)")
	flag.IntVar(&opt.stallConns, "chaos-stall-conns", 0, "open this many TCP connections that submit but never read responses (exercises -tcp-write-timeout eviction; needs a TCP server)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if opt.clients < 1 || opt.links < opt.clients || opt.batch < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: need clients >= 1, links >= clients, batch >= 1")
		os.Exit(2)
	}
	// Normalize the transport selection: -tcp and -addr are the legacy
	// spellings of -transport tcp.
	if opt.transport == "" && (opt.tcpLoop || opt.addr != "") {
		opt.transport = "tcp"
	}
	switch opt.transport {
	case "", "tcp", "udp", "shm":
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -transport %q (want tcp | udp | shm)\n", opt.transport)
		os.Exit(2)
	}
	if opt.transport == "tcp" && opt.addr == "" {
		opt.tcpLoop = true
	}
	if opt.pipeline > 1 && opt.transport == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -pipeline needs a wire transport (-transport, -addr or -tcp); the in-process path has no wire to pipeline")
		os.Exit(2)
	}
	if opt.shmPath != "" && opt.transport != "shm" {
		fmt.Fprintln(os.Stderr, "loadgen: -shm needs -transport shm")
		os.Exit(2)
	}
	if opt.udpDrop > 0 && opt.transport != "udp" {
		fmt.Fprintln(os.Stderr, "loadgen: -udp-drop needs -transport udp")
		os.Exit(2)
	}
	if opt.serveExec != "" && opt.transport == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -serve-exec needs -transport tcp | udp | shm")
		os.Exit(2)
	}
	if opt.format != "text" && opt.format != "json" {
		fmt.Fprintf(os.Stderr, "loadgen: unknown -format %q (want text | json)\n", opt.format)
		os.Exit(2)
	}
	if opt.coldLinks > 0 {
		if opt.pipeline > 1 || opt.transport == "udp" {
			fmt.Fprintln(os.Stderr, "loadgen: -cold-links drives the stop-and-wait replay paths (no -pipeline > 1, no -transport udp)")
			os.Exit(2)
		}
		if opt.hotFrac < 0 || opt.hotFrac > 1 {
			fmt.Fprintln(os.Stderr, "loadgen: -hot-frac must be in [0,1]")
			os.Exit(2)
		}
		if opt.ttl <= 0 {
			fmt.Fprintln(os.Stderr, "loadgen: -cold-links needs -ttl > 0 (laps are paced to 2x the TTL so every touch is an evict/restore)")
			os.Exit(2)
		}
		// The cold population is the idle-skew mechanism; the bursty-link
		// fraction of the hot set would only muddy the churn accounting.
		opt.idleFrac = 0
	}
	localStore := opt.addr == "" && opt.serveExec == "" && opt.shmPath == ""
	if opt.coldDir != "" && !localStore && opt.serveExec == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -cold-dir configures the served store; with a remote server pass it to softrated instead (or use -serve-exec)")
		os.Exit(2)
	}
	if opt.minSpills > 0 && (!localStore || opt.coldDir == "") {
		fmt.Fprintln(os.Stderr, "loadgen: -min-spills needs an in-process or loopback server with -cold-dir")
		os.Exit(2)
	}
	if opt.chaosCold > 0 && opt.coldDir == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -chaos-cold needs -cold-dir (it injects faults into the cold tier)")
		os.Exit(2)
	}
	if opt.stallConns > 0 && opt.transport != "tcp" && opt.serveExec == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -chaos-stall-conns needs a TCP server (-transport tcp, or any -serve-exec child)")
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// algosFor resolves the -algo flag into registry specs.
func algosFor(arg string) ([]ctl.Spec, error) {
	if arg == "all" {
		return ctl.Specs(), nil
	}
	var out []ctl.Spec
	seen := map[ctl.Algo]bool{}
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		spec, ok := ctl.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown algorithm %q (registered: %s)", name, strings.Join(ctl.Names(), ", "))
		}
		if seen[spec.ID] {
			return nil, fmt.Errorf("algorithm %q listed twice", name)
		}
		seen[spec.ID] = true
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no algorithms in %q", arg)
	}
	return out, nil
}

// decider abstracts the two transports.
type decider interface {
	Decide(ops []linkstore.Op, out []int32) ([]int32, error)
}

// asyncDecider is the pipelined surface: several batches in flight per
// connection, answered in submission order.
type asyncDecider interface {
	decider
	Submit(ops []linkstore.Op) (*server.Pending, error)
	Wait(p *server.Pending, out []int32) ([]int32, error)
}

type inProcess struct{ srv *server.Server }

func (p inProcess) Decide(ops []linkstore.Op, out []int32) ([]int32, error) {
	return p.srv.Decide(ops, out), nil
}

type tcpDecider struct{ cli *server.Client }

func (t tcpDecider) Decide(ops []linkstore.Op, out []int32) ([]int32, error) {
	return t.cli.Decide(ops, out)
}

func (t tcpDecider) Submit(ops []linkstore.Op) (*server.Pending, error) {
	return t.cli.Submit(ops)
}

func (t tcpDecider) Wait(p *server.Pending, out []int32) ([]int32, error) {
	return t.cli.Wait(p, out)
}

// maxRates bounds the chosen-rate distribution (the full Table 2 set).
const maxRates = 8

// link is one replayed sender.
type link struct {
	id   uint64
	algo ctl.Algo
	iter *trace.FrameIter
	rate int32
	bare ctl.Controller
	// bareSoft, when bare is a SoftRate controller, skips the interface
	// dispatch on the (hot) verify path — mirroring the store's own
	// SoftRate fast path so -verify measures the service, not the checker.
	bareSoft *core.SoftRate

	// Bursty links send one frame, then stay silent for idleGap — long
	// enough to cross the server's TTL, so they exercise eviction and
	// transparent restoration. Zero means always active.
	idleGap time.Duration
	nextAt  time.Time
}

type clientResult struct {
	decisions  uint64
	mismatch   string
	err        error
	lat        stats.Histogram
	rateCounts [maxRates]uint64
	udp        server.UDPClientStats
}

// algoReport is one algorithm's slice of the machine-readable report.
type algoReport struct {
	Algo            string   `json:"algo"`
	Decisions       uint64   `json:"decisions"`
	DecisionsPerSec float64  `json:"decisions_per_sec"`
	P50Ns           int64    `json:"batch_p50_ns"`
	P99Ns           int64    `json:"batch_p99_ns"`
	MaxNs           int64    `json:"batch_max_ns"`
	RateCounts      []uint64 `json:"rate_counts"`
	StateBytes      int      `json:"state_bytes"`
	// Store churn, per algorithm (in-process servers only).
	Creates   uint64 `json:"store_creates,omitempty"`
	Restores  uint64 `json:"store_restores,omitempty"`
	Evictions uint64 `json:"store_evictions,omitempty"`
	Live      int    `json:"store_live,omitempty"`
	Archived  int    `json:"store_archived,omitempty"`
}

// benchReport is the -format json / -bench-out artifact.
type benchReport struct {
	// GitSHA, GoVersion and NumCPU stamp the environment that produced
	// the numbers, so a committed artifact is comparable across hosts.
	GitSHA          string       `json:"git_sha"`
	GoVersion       string       `json:"go_version"`
	NumCPU          int          `json:"num_cpu"`
	Transport       string       `json:"transport"`
	Mix             string       `json:"mix"`
	LinksPerAlgo    int          `json:"links_per_algo"`
	ClientsPerAlgo  int          `json:"clients_per_algo"`
	Batch           int          `json:"batch"`
	Pipeline        int          `json:"pipeline,omitempty"`
	StoreWorkers    int          `json:"store_workers,omitempty"`
	Prewarmed       bool         `json:"prewarmed,omitempty"`
	ElapsedSec      float64      `json:"elapsed_sec"`
	TotalDecisions  uint64       `json:"total_decisions"`
	DecisionsPerSec float64      `json:"decisions_per_sec"`
	Verified        bool         `json:"verified"`
	Algos           []algoReport `json:"algos"`
	// UDPStats aggregates the UDP clients' datagram fates (loss runs show
	// nonzero timeouts: each is one decision lost and a rate kept).
	UDPStats *server.UDPClientStats `json:"udp,omitempty"`
	UDPDrop  float64                `json:"udp_drop,omitempty"`
	// Cold-churn shape and outcome (in-process/loopback servers only).
	ColdLinks int              `json:"cold_links,omitempty"`
	HotFrac   float64          `json:"hot_frac,omitempty"`
	Cold      *coldstore.Stats `json:"cold,omitempty"`
	// ResidentBytes is heap-in-use after a forced GC at the end of the
	// run — the resident-memory figure the cold tier exists to bound.
	ResidentBytes uint64 `json:"resident_bytes,omitempty"`
	// Chaos records the fault-injection shape and what it provoked
	// (in-process/loopback servers report the counters; -serve-exec runs
	// record only the shape — the child logs its own final status).
	Chaos *chaosReport `json:"chaos,omitempty"`
	// Micro holds the -micro linkstore evict/restore A/B results.
	Micro []microResult `json:"linkstore_microbench,omitempty"`
}

// chaosReport is the chaos/overload slice of the report.
type chaosReport struct {
	ChaosCold         float64 `json:"chaos_cold,omitempty"`
	ChaosSeed         int64   `json:"chaos_seed,omitempty"`
	MaxInflight       int     `json:"max_inflight,omitempty"`
	StallConns        int     `json:"stall_conns,omitempty"`
	ColdSpillErrors   uint64  `json:"cold_spill_errors,omitempty"`
	ColdRestoreErrors uint64  `json:"cold_restore_errors,omitempty"`
	BreakerTrips      uint64  `json:"breaker_trips,omitempty"`
	SpillRetries      uint64  `json:"spill_retries,omitempty"`
	ColdDegraded      bool    `json:"cold_degraded,omitempty"`
	UDPShed           uint64  `json:"udp_shed,omitempty"`
	SlowEvicted       uint64  `json:"slow_clients_evicted,omitempty"`
}

func run(opt options) error {
	mix, err := mixFor(opt.mix)
	if err != nil {
		return err
	}
	algos, err := algosFor(opt.algo)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "loadgen: generating traces (mix=%s)...\n", opt.mix)
	traces := makeTraces(opt)

	// A local (in-process or loopback) server can carry the disk cold
	// tier directly; -serve-exec children get the flags forwarded instead.
	var coldTier *coldstore.Store
	if opt.coldDir != "" && opt.serveExec == "" {
		ccfg := coldstore.Config{Dir: opt.coldDir, CompactRatio: opt.compactRatio}
		var inj *faultfs.Injector
		if opt.chaosCold > 0 {
			// Write-path faults only (see faultfs.ChaosRates): spills fail
			// and trip the breaker, but whatever does reach disk reads back
			// real bytes, so -verify exactness is preserved. Disarmed until
			// Open finishes so the tier always comes up.
			inj = faultfs.Wrap(faultfs.OS{}, uint64(opt.chaosSeed), faultfs.ChaosRates(opt.chaosCold))
			inj.Arm(false)
			ccfg.FS = inj
			fmt.Fprintf(os.Stderr, "loadgen: CHAOS cold-tier fault injection on (rate %g, seed %d)\n", opt.chaosCold, opt.chaosSeed)
		}
		var err error
		coldTier, err = coldstore.Open(ccfg)
		if err != nil {
			return err
		}
		defer coldTier.Close()
		if inj != nil {
			inj.Arm(true)
		}
	}

	newLocalServer := func() *server.Server {
		return server.New(server.Config{Store: linkstore.Config{
			Shards: opt.shards,
			TTL:    opt.ttl,
			// The loadgen knows its own population exactly; a real
			// deployment passes softrated -expected-links. Each algorithm
			// holds only its own -links share, so the slab reserve uses
			// the per-algo figure (the cold population churns through a
			// TTL-bounded slice of the hot map, so it needs no reserve).
			ExpectedLinks:        opt.links * len(algos),
			ExpectedLinksPerAlgo: opt.links,
			BatchWorkers:         opt.workers,
			Cold:                 coldTier,
			ColdFront:            opt.coldFront,
		},
			MaxInflight:  opt.maxInflight,
			WriteTimeout: opt.writeTimeout,
		})
	}

	// transport labels the run for the report; transportDim is the
	// canonical trend-ledger dimension (no addresses, so records from
	// different hosts stay comparable).
	var srv *server.Server
	transport, transportDim := "in-process", "in-process"
	udpAddr := ""
	shmPrefix := opt.shmPath
	shmRings := opt.clients * len(algos) // one ring per client goroutine

	childTCP := ""
	if opt.serveExec != "" {
		child, err := startServeExec(opt, shmRings)
		if err != nil {
			return err
		}
		defer child.stop()
		childTCP = child.tcpAddr
		transportDim = opt.transport + "-exec"
		switch opt.transport {
		case "tcp":
			opt.addr = child.tcpAddr
			transport = "tcp-exec"
		case "udp":
			udpAddr = child.udpAddr
			transport = "udp-exec"
		case "shm":
			shmPrefix = child.shmPath
			transport = "shm-exec"
		}
	} else {
		switch opt.transport {
		case "":
			srv = newLocalServer()
		case "tcp":
			if opt.addr != "" {
				transport, transportDim = "tcp:"+opt.addr, "tcp"
				break
			}
			srv = newLocalServer()
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go srv.Serve(l)
			defer srv.Close()
			opt.addr = l.Addr().String()
			transport, transportDim = "tcp-loopback", "tcp-loopback"
		case "udp":
			if opt.addr != "" {
				udpAddr = opt.addr
				transport, transportDim = "udp:"+opt.addr, "udp"
				break
			}
			srv = newLocalServer()
			uconn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				return err
			}
			go srv.ServeUDP(uconn)
			defer srv.Close()
			udpAddr = uconn.LocalAddr().String()
			transport, transportDim = "udp-loopback", "udp-loopback"
		case "shm":
			if shmPrefix != "" {
				transport, transportDim = "shm:"+shmPrefix, "shm"
				break
			}
			srv = newLocalServer()
			dir, err := os.MkdirTemp("", "softrate-shm-")
			if err != nil {
				return err
			}
			shmPrefix = filepath.Join(dir, "ring")
			regions := make([]*shmring.Region, shmRings)
			for i := range regions {
				g, err := shmring.Create(server.RingPath(shmPrefix, i), opt.shmBytes)
				if err != nil {
					os.RemoveAll(dir)
					return err
				}
				regions[i] = g
			}
			defer func() {
				for _, g := range regions {
					g.Close()
				}
				os.RemoveAll(dir)
			}()
			go srv.ServeSHM(regions)
			defer srv.Close() // LIFO: the serve loop stops before the regions unmap
			transport, transportDim = "shm-loopback", "shm-loopback"
		}
	}

	// Stalled TCP clients run alongside the real load for the whole run
	// (prewarm included): they submit valid batches in a reserved link-ID
	// namespace and never read a response, so the server's write-deadline
	// eviction is what keeps them from pinning handlers.
	var stallWG *sync.WaitGroup
	stallStop := make(chan struct{})
	if opt.stallConns > 0 {
		stallAddr := opt.addr
		if stallAddr == "" {
			stallAddr = childTCP
		}
		if stallAddr == "" {
			return errors.New("-chaos-stall-conns: no TCP address to stall against")
		}
		fmt.Fprintf(os.Stderr, "loadgen: CHAOS %d stalled TCP clients against %s\n", opt.stallConns, stallAddr)
		stallWG = runStallConns(stallAddr, opt.stallConns, stallStop)
		defer func() {
			close(stallStop)
			stallWG.Wait()
		}()
	}

	// Per algorithm: the same link population, the same per-link trace
	// iterator seeds — identical FramesMix sequences head-to-head — but
	// disjoint link IDs, so one store serves the full mix.
	idleGap := 2 * opt.ttl
	if idleGap <= 0 {
		idleGap = time.Second
	}
	clients := make([][]*link, len(algos)*opt.clients)
	for ai, spec := range algos {
		for i := 0; i < opt.links; i++ {
			lt := traces[i%len(traces)]
			// Namespace link IDs by registry algorithm ID (not list
			// position) so two loadgen processes driving different -algo
			// sets at one server never collide on link state.
			l := &link{
				id:   uint64(spec.ID)<<40 | uint64(i+1),
				algo: spec.ID,
				iter: lt.FramesMix(opt.seed+int64(i)*7919, mix),
			}
			if float64(i) < opt.idleFrac*float64(opt.links) {
				l.idleGap = idleGap
			}
			if opt.verify {
				if spec.ID == ctl.AlgoSoftRate {
					// Keep the SoftRate checkers as bare core controllers,
					// allocated densely: -verify doubles the per-decision
					// controller work, and the checker should not dominate
					// what the run measures.
					l.bareSoft = core.New(core.DefaultConfig())
				} else {
					l.bare = spec.New()
				}
			}
			c := ai*opt.clients + i%opt.clients
			clients[c] = append(clients[c], l)
		}
	}
	var pops []*coldPop
	if opt.coldLinks > 0 {
		pops = makeColdPops(algos, opt)
		fmt.Fprintf(os.Stderr, "loadgen: cold churn: %d links per algorithm behind a hot-frac %.2f hot set\n",
			opt.coldLinks, opt.hotFrac)
	}

	names := make([]string, len(algos))
	for i, s := range algos {
		names[i] = s.Name
	}
	pipeNote := ""
	if opt.pipeline > 1 {
		pipeNote = fmt.Sprintf(", pipeline %d", opt.pipeline)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %s x %d clients x ~%d links, batch %d%s, %v via %s\n",
		strings.Join(names, "+"), opt.clients, opt.links/opt.clients, opt.batch, pipeNote, opt.duration, transport)
	if opt.verify && srv == nil {
		fmt.Fprintln(os.Stderr, "loadgen: note: -verify against a remote server assumes these link IDs are fresh; a server that already served them will (correctly) report mismatches")
	}

	// Clients dial (and with -prewarm, walk every link once) before the
	// measurement clock starts: the timed region then covers only
	// steady-state decisions.
	var stop atomic.Bool
	var warmed sync.WaitGroup
	startCh := make(chan struct{})
	results := make([]clientResult, len(clients))
	var wg sync.WaitGroup
	for c := range clients {
		wg.Add(1)
		warmed.Add(1)
		go func(c int) {
			defer wg.Done()
			dr := &driver{opt: opt, links: clients[c]}
			if pops != nil {
				dr.pop = pops[c]
			}
			switch opt.transport {
			case "":
				dr.d = inProcess{srv}
			case "tcp":
				var cli *server.Client
				var err error
				if opt.pipeline > 1 {
					cli, err = server.DialPipelined(opt.addr, opt.pipeline)
				} else {
					cli, err = server.Dial(opt.addr)
				}
				if err != nil {
					results[c].err = err
					warmed.Done()
					return
				}
				defer cli.Close()
				dr.d = tcpDecider{cli}
			case "udp":
				cli, err := server.DialUDP(udpAddr, max(opt.pipeline, 1), opt.udpTimeout)
				if err != nil {
					results[c].err = err
					warmed.Done()
					return
				}
				defer cli.Close()
				if opt.verify {
					// The UDP mirror advances on response arrival, not at
					// submit: the hook fires before the drop shim below, so
					// injected drops still advance it while server-side sheds
					// (no response at all) never do. See udpVerifier.
					dr.uv = newUDPVerifier()
					cli.OnResponse = dr.uv.onResponse
				}
				if opt.udpDrop > 0 {
					// Deterministic per-client chaos: the shim discards this
					// fraction of responses after parsing, exactly as if the
					// network had eaten them.
					rng := rand.New(rand.NewSource(opt.seed + 104729*int64(c+1)))
					p := opt.udpDrop
					cli.DropResponse = func(uint32) bool { return rng.Float64() < p }
				}
				dr.udp = cli
			case "shm":
				cli, err := dialFreeRing(shmPrefix, shmRings, max(opt.pipeline, 1))
				if err != nil {
					results[c].err = err
					warmed.Done()
					return
				}
				defer cli.Close()
				dr.d = shmDecider{cli}
			}
			if opt.prewarm && !dr.prewarm() {
				results[c] = dr.res
				warmed.Done()
				return
			}
			warmed.Done()
			<-startCh
			results[c] = dr.run(&stop)
			if dr.udp != nil {
				results[c].udp = dr.udp.Stats()
			}
		}(c)
	}
	warmed.Wait()
	start := time.Now()
	close(startCh)
	time.AfterFunc(opt.duration, func() { stop.Store(true) })
	wg.Wait()
	elapsed := time.Since(start)

	// Fold per-client results into per-algorithm reports (clients are
	// grouped by algorithm, so latency histograms attribute cleanly).
	var total uint64
	report := benchReport{
		GitSHA:         benchtrend.GitSHA(),
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		Transport:      transport,
		Mix:            opt.mix,
		LinksPerAlgo:   opt.links,
		ClientsPerAlgo: opt.clients,
		Batch:          opt.batch,
		Pipeline:       opt.pipeline,
		StoreWorkers:   opt.workers,
		Prewarmed:      opt.prewarm,
		ElapsedSec:     elapsed.Seconds(),
		Verified:       opt.verify,
	}
	var storeStats *linkstore.Stats
	if srv != nil {
		s := srv.Stats().Store
		storeStats = &s
		report.Cold = s.Cold
		// Restore errors break exactness (the store fell through to a
		// fresh controller while the bare mirror kept its state); spill
		// errors do not (the failed generation stays resident in RAM), so
		// chaos runs can inject write faults under -verify.
		if opt.verify && s.ColdRestoreErrors != 0 {
			return fmt.Errorf("cold tier reported %d restore errors", s.ColdRestoreErrors)
		}
		// HeapInuse after a forced GC is the honest resident figure: live
		// link state plus the cold index, with garbage discounted.
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		report.ResidentBytes = ms.HeapInuse
	}
	if opt.coldLinks > 0 {
		report.ColdLinks = opt.coldLinks
		report.HotFrac = opt.hotFrac
	}
	if opt.chaosCold > 0 || opt.maxInflight > 0 || opt.stallConns > 0 {
		ch := &chaosReport{MaxInflight: opt.maxInflight, StallConns: opt.stallConns}
		if opt.chaosCold > 0 {
			ch.ChaosCold, ch.ChaosSeed = opt.chaosCold, opt.chaosSeed
		}
		if storeStats != nil {
			ch.ColdSpillErrors = storeStats.ColdSpillErrors
			ch.ColdRestoreErrors = storeStats.ColdRestoreErrors
			ch.BreakerTrips = storeStats.BreakerTrips
			ch.SpillRetries = storeStats.SpillRetries
			ch.ColdDegraded = storeStats.ColdDegraded
		}
		if srv != nil {
			st := srv.Status()
			ch.UDPShed = st.UDP.Shed
			ch.SlowEvicted = st.Transport.SlowClientsEvicted
		}
		report.Chaos = ch
	}
	for ai, spec := range algos {
		var lat stats.Histogram
		ar := algoReport{Algo: spec.Name, StateBytes: spec.StateLen, RateCounts: make([]uint64, maxRates)}
		for c := ai * opt.clients; c < (ai+1)*opt.clients; c++ {
			r := &results[c]
			if r.err != nil {
				return r.err
			}
			if r.mismatch != "" {
				return fmt.Errorf("determinism violation: %s", r.mismatch)
			}
			ar.Decisions += r.decisions
			lat.Merge(&r.lat)
			for k := range r.rateCounts {
				ar.RateCounts[k] += r.rateCounts[k]
			}
		}
		ar.DecisionsPerSec = float64(ar.Decisions) / elapsed.Seconds()
		ar.P50Ns = int64(lat.Quantile(0.5))
		ar.P99Ns = int64(lat.Quantile(0.99))
		ar.MaxNs = int64(lat.Max())
		if storeStats != nil {
			for _, as := range storeStats.Algos {
				if as.Algo == spec.ID {
					ar.Creates, ar.Restores, ar.Evictions = as.Creates, as.Restores, as.Evictions
					ar.Live, ar.Archived = as.Live, as.Archived
				}
			}
		}
		total += ar.Decisions
		report.Algos = append(report.Algos, ar)
	}
	report.TotalDecisions = total
	report.DecisionsPerSec = float64(total) / elapsed.Seconds()
	if opt.transport == "udp" {
		var agg server.UDPClientStats
		for i := range results {
			u := &results[i].udp
			agg.Sent += u.Sent
			agg.Answered += u.Answered
			agg.Timeouts += u.Timeouts
			agg.Stale += u.Stale
			agg.Malformed += u.Malformed
			agg.Injected += u.Injected
		}
		report.UDPStats = &agg
		report.UDPDrop = opt.udpDrop
	}

	if opt.micro {
		fmt.Fprintln(os.Stderr, "loadgen: running linkstore evict/restore microbench (RAM archive vs cold tier)...")
		mr, err := runMicro(2 * time.Second)
		if err != nil {
			return err
		}
		report.Micro = mr
	}

	if opt.benchOut != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opt.benchOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	if opt.trendOut != "" {
		// Trend records carry only higher-is-better throughput figures:
		// the ledger's gate (softrate-benchtrend) compares against the
		// historical median with a minimum ratio.
		metrics := map[string]float64{"decisions_per_sec": report.DecisionsPerSec}
		for _, ar := range report.Algos {
			metrics["decisions_per_sec."+ar.Algo] = ar.DecisionsPerSec
		}
		if opt.coldLinks > 0 && report.ResidentBytes > 0 {
			// Lower-is-better: gated by softrate-benchtrend -lower-better.
			metrics["resident_bytes"] = float64(report.ResidentBytes)
		}
		rec := benchtrend.Stamp("loadgen", metrics)
		rec.Transport = transportDim
		if opt.coldLinks > 0 {
			// Cold-churn rows form their own trend dimension: their
			// decisions/s and resident bytes are not comparable to the
			// plain replay workload's.
			rec.Transport = transportDim + "-coldchurn"
		}
		if opt.chaosCold > 0 {
			// Fault-injection rows likewise: churn under injected faults
			// pays retry and fallback costs no clean run has.
			rec.Transport += "-chaos"
		}
		if err := benchtrend.Append(opt.trendOut, rec); err != nil {
			return err
		}
	}

	if opt.format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		printText(report, srv, opt)
	}

	if opt.minRate > 0 && report.DecisionsPerSec < opt.minRate {
		return fmt.Errorf("sustained %.0f decisions/sec, below the required %.0f", report.DecisionsPerSec, opt.minRate)
	}
	if opt.minSpills > 0 {
		if report.Cold == nil {
			return fmt.Errorf("-min-spills set but the server has no cold tier")
		}
		if report.Cold.Spills < opt.minSpills {
			return fmt.Errorf("cold tier spilled %d links, below the required %d", report.Cold.Spills, opt.minSpills)
		}
	}
	return nil
}

func printText(rep benchReport, srv *server.Server, opt options) {
	fmt.Printf("decisions: %d in %.1fs = %.0f decisions/sec\n",
		rep.TotalDecisions, rep.ElapsedSec, rep.DecisionsPerSec)
	for _, ar := range rep.Algos {
		fmt.Printf("%-11s %9d decisions (%.0f/sec) | batch p50=%v p99=%v max=%v | state %dB\n",
			ar.Algo+":", ar.Decisions, ar.DecisionsPerSec,
			time.Duration(ar.P50Ns), time.Duration(ar.P99Ns), time.Duration(ar.MaxNs), ar.StateBytes)
		fmt.Printf("            rates")
		for k := 0; k < rate.Count(); k++ {
			fmt.Printf(" %d:%d", k, ar.RateCounts[k])
		}
		fmt.Println()
		if srv != nil {
			fmt.Printf("            store creates=%d restores=%d evictions=%d live=%d archived=%d\n",
				ar.Creates, ar.Restores, ar.Evictions, ar.Live, ar.Archived)
		}
	}
	if srv != nil {
		st := srv.Stats()
		fmt.Printf("store: live=%d archived=%d (%d KiB) evictions=%d creates=%d restores=%d\n",
			st.Store.Live, st.Store.Archived, st.Store.ArchivedBytes>>10, st.Store.Evictions, st.Store.Creates, st.Store.Restores)
		fmt.Printf("kinds: ber=%d collision=%d silent=%d postamble=%d\n",
			st.Kinds[0], st.Kinds[1], st.Kinds[2], st.Kinds[3])
	} else {
		fmt.Println("store: n/a (remote server; see softrated -stats)")
	}
	if c := rep.Cold; c != nil {
		fmt.Printf("cold: links=%d segments=%d disk=%d MiB spills=%d restores=%d compactions=%d restore-p99=%v\n",
			c.Links, c.Segments, c.DiskBytes>>20, c.Spills, c.Restores, c.Compactions,
			time.Duration(c.RestoreLatency.P99Ns))
	}
	if rep.ResidentBytes > 0 {
		fmt.Printf("resident: %.1f MiB heap in use after final GC\n", float64(rep.ResidentBytes)/(1<<20))
	}
	if ch := rep.Chaos; ch != nil {
		fmt.Printf("chaos: spill-errors=%d restore-errors=%d breaker-trips=%d retries=%d degraded=%v shed=%d slow-evicted=%d\n",
			ch.ColdSpillErrors, ch.ColdRestoreErrors, ch.BreakerTrips, ch.SpillRetries, ch.ColdDegraded, ch.UDPShed, ch.SlowEvicted)
	}
	for _, m := range rep.Micro {
		fmt.Printf("micro %-30s %11.0f links/s (%s, %d links, window %d, spills=%d restores=%d)\n",
			m.Name+":", m.LinksPerSec, m.Algo, m.Links, m.Window, m.DiskSpills, m.DiskRestores)
	}
	if rep.UDPStats != nil {
		u := rep.UDPStats
		fmt.Printf("udp: sent=%d answered=%d timeouts=%d stale=%d malformed=%d injected-drops=%d (drop rate %g)\n",
			u.Sent, u.Answered, u.Timeouts, u.Stale, u.Malformed, u.Injected, rep.UDPDrop)
	}
	if opt.verify {
		fmt.Printf("verify: %d decisions byte-identical to bare controllers\n", rep.TotalDecisions)
	}
}

// shmDecider adapts a shared-memory client to the loadgen's pipelined
// decider surface (the SHMClient already speaks server.Pending).
type shmDecider struct{ cli *server.SHMClient }

func (s shmDecider) Decide(ops []linkstore.Op, out []int32) ([]int32, error) {
	return s.cli.Decide(ops, out)
}

func (s shmDecider) Submit(ops []linkstore.Op) (*server.Pending, error) {
	return s.cli.Submit(ops)
}

func (s shmDecider) Wait(p *server.Pending, out []int32) ([]int32, error) {
	return s.cli.Wait(p, out)
}

// dialFreeRing attaches the first free shm ring under prefix. Concurrent
// clients race for slots (Attach is a CAS), so losers rescan until the
// deadline; with one ring per client everyone lands somewhere.
func dialFreeRing(prefix string, rings, depth int) (*server.SHMClient, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		var lastErr error
		for i := 0; i < rings; i++ {
			cli, err := server.DialSHM(server.RingPath(prefix, i), depth, 0)
			if err == nil {
				return cli, nil
			}
			lastErr = err
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("no free shm ring under %s (%d rings): %w", prefix, rings, lastErr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// childServer is a softrated process forked by -serve-exec: the
// multi-process bench mode, where the transport crosses a real process
// boundary instead of goroutines sharing one runtime.
type childServer struct {
	cmd     *exec.Cmd
	tcpAddr string
	udpAddr string
	shmPath string
	tmpDir  string
}

// startServeExec forks the softrated binary with ephemeral listeners
// (and, for shm, a temp ring directory), then scans its stderr banner
// lines for the actual addresses before returning.
func startServeExec(opt options, shmRings int) (*childServer, error) {
	c := &childServer{}
	args := []string{"-addr", "127.0.0.1:0", "-shards", fmt.Sprint(opt.shards), "-ttl", opt.ttl.String()}
	if opt.coldDir != "" {
		args = append(args, "-cold-dir", opt.coldDir)
		if opt.coldFront > 0 {
			args = append(args, "-cold-front", fmt.Sprint(opt.coldFront))
		}
		if opt.compactRatio > 0 {
			args = append(args, "-compact-ratio", fmt.Sprint(opt.compactRatio))
		}
		if opt.chaosCold > 0 {
			args = append(args, "-chaos-cold", fmt.Sprint(opt.chaosCold), "-chaos-seed", fmt.Sprint(opt.chaosSeed))
		}
	}
	if opt.maxInflight > 0 {
		args = append(args, "-max-inflight", fmt.Sprint(opt.maxInflight))
	}
	if opt.writeTimeout > 0 {
		args = append(args, "-tcp-write-timeout", opt.writeTimeout.String())
	}
	switch opt.transport {
	case "udp":
		args = append(args, "-udp", "127.0.0.1:0")
	case "shm":
		dir, err := os.MkdirTemp("", "softrate-shm-")
		if err != nil {
			return nil, err
		}
		c.tmpDir = dir
		c.shmPath = filepath.Join(dir, "ring")
		args = append(args, "-shm", c.shmPath, "-shm-rings", fmt.Sprint(shmRings))
		if opt.shmBytes > 0 {
			args = append(args, "-shm-ring-bytes", fmt.Sprint(opt.shmBytes))
		}
	}
	cmd := exec.Command(opt.serveExec, args...)
	cmd.Stdout = os.Stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		os.RemoveAll(c.tmpDir)
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		os.RemoveAll(c.tmpDir)
		return nil, fmt.Errorf("serve-exec %s: %w", opt.serveExec, err)
	}
	c.cmd = cmd

	ready := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sent := false
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, "  [softrated] "+line)
			if sent {
				continue
			}
			if a, ok := bannerAddr(line, "softrated: listening on "); ok {
				c.tcpAddr = a
			}
			if a, ok := bannerAddr(line, "softrated: udp on "); ok {
				c.udpAddr = a
			}
			haveTransport := (opt.transport == "tcp" && c.tcpAddr != "") ||
				(opt.transport == "udp" && c.udpAddr != "") ||
				(opt.transport == "shm" && strings.HasPrefix(line, "softrated: shm rings at "))
			if haveTransport {
				sent = true
				ready <- nil
			}
		}
		if !sent {
			ready <- fmt.Errorf("serve-exec: softrated exited before announcing its %s transport", opt.transport)
		}
	}()
	select {
	case err := <-ready:
		if err != nil {
			c.stop()
			return nil, err
		}
		return c, nil
	case <-time.After(10 * time.Second):
		c.stop()
		return nil, errors.New("serve-exec: timed out waiting for softrated to come up")
	}
}

// bannerAddr extracts the address token after prefix in a softrated
// banner line ("softrated: udp on 127.0.0.1:7447 (burst 32)").
func bannerAddr(line, prefix string) (string, bool) {
	if !strings.HasPrefix(line, prefix) {
		return "", false
	}
	rest := line[len(prefix):]
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// stop drains the child (SIGTERM takes softrated's graceful-drain path)
// and reaps it; a watchdog kill bounds a wedged child.
func (c *childServer) stop() {
	if c.cmd != nil && c.cmd.Process != nil {
		c.cmd.Process.Signal(os.Interrupt)
		watchdog := time.AfterFunc(15*time.Second, func() { c.cmd.Process.Kill() })
		c.cmd.Wait()
		watchdog.Stop()
	}
	if c.tmpDir != "" {
		os.RemoveAll(c.tmpDir)
	}
}

// batchBuilder assembles request batches from a rotating cursor over a
// link population; each ready link contributes its next trace event.
// With a cold population attached, hotFrac of each batch replays the hot
// links and the remainder churns the cold cursor (cold entries carry a
// nil *link in the batch slice; their index is recovered from the op's
// link ID).
type batchBuilder struct {
	links   []*link
	cursor  int
	cold    *coldPop
	hotFrac float64
}

// fill appends up to max ready events to ops/batch (reset first) and
// returns the filled slices. Empty results mean every link is waiting out
// an idle gap or has exhausted its trace.
func (b *batchBuilder) fill(max int, now time.Time, ops []linkstore.Op, batch []*link) ([]linkstore.Op, []*link) {
	ops = ops[:0]
	batch = batch[:0]
	hotMax := max
	if b.cold != nil {
		hotMax = int(float64(max)*b.hotFrac + 0.5)
	}
	skipped := 0
	for len(ops) < hotMax {
		l := b.links[b.cursor]
		b.cursor++
		if b.cursor == len(b.links) {
			b.cursor = 0
		}
		if l.idleGap > 0 {
			if now.Before(l.nextAt) {
				// All-idle guard: don't spin forever filling a batch no
				// link is willing to join.
				if skipped++; skipped > 2*len(b.links) {
					break
				}
				continue
			}
			l.nextAt = now.Add(l.idleGap)
		}
		ev, ok := l.iter.Next(int(l.rate))
		if !ok {
			if skipped++; skipped > 2*len(b.links) {
				break
			}
			continue
		}
		ops = append(ops, linkstore.Op{
			LinkID:    l.id,
			Algo:      l.algo,
			Kind:      ev.Kind,
			RateIndex: int32(ev.RateIndex),
			BER:       ev.BER,
			SNRdB:     float32(ev.SNRdB),
			Delivered: ev.Delivered,
		})
		batch = append(batch, l)
	}
	for b.cold != nil && len(ops) < max {
		op, ok := b.cold.next(now)
		if !ok {
			break // lap gate: the population must idle past the TTL first
		}
		ops = append(ops, op)
		batch = append(batch, nil)
	}
	return ops, batch
}

// driver is one client's replay engine. Exactly one of d and udp is
// set: UDP gets its own replay paths because its loss contract inverts
// the bookkeeping — a timed-out decision means "keep the current rate",
// not "fail", and the -verify checkers advance only when a response
// arrives and proves the server applied the batch (see udpVerifier; a
// batch the server shed under overload was never applied, so the mirror
// must not move either).
type driver struct {
	d     decider
	udp   *server.UDPClient
	uv    *udpVerifier // UDP -verify mirror, nil otherwise
	opt   options
	links []*link
	pop   *coldPop // cold-churn slice, nil without -cold-links
	res   clientResult
}

// absorb applies one answered batch to the closed loop: next rates, the
// chosen-rate histogram, and the -verify check against bare controllers.
// Returns false when a mismatch ends the run.
func (dr *driver) absorb(ops []linkstore.Op, batch []*link, out []int32) bool {
	res := &dr.res
	for i, l := range batch {
		if l == nil { // cold-churn op: batch index k lives in the link ID
			k := int(ops[i].LinkID - dr.pop.base)
			dr.pop.rates[k] = int8(out[i])
			if ri := out[i]; ri >= 0 && int(ri) < maxRates {
				res.rateCounts[ri]++
			}
			if dr.opt.verify {
				if want := dr.pop.mirror(k, ops[i]); int32(want) != out[i] {
					res.mismatch = fmt.Sprintf("algo %d cold link %d: server decided %d, bare controller %d (op %+v)",
						dr.pop.algo, ops[i].LinkID, out[i], want, ops[i])
					return false
				}
			}
			continue
		}
		l.rate = out[i]
		if ri := out[i]; ri >= 0 && int(ri) < maxRates {
			res.rateCounts[ri]++
		}
		if l.bare != nil || l.bareSoft != nil {
			var want int
			if l.bareSoft != nil {
				want = l.bareSoft.Apply(ops[i].Kind, int(ops[i].RateIndex), ops[i].BER)
			} else {
				want = l.bare.Apply(ctl.Feedback{
					Kind:      ops[i].Kind,
					RateIndex: int(ops[i].RateIndex),
					BER:       ops[i].BER,
					SNRdB:     float64(ops[i].SNRdB),
					Airtime:   float64(ops[i].Airtime),
					Delivered: ops[i].Delivered,
				})
			}
			if int32(want) != out[i] {
				res.mismatch = fmt.Sprintf("algo %d link %d: server decided %d, bare controller %d (op %+v)",
					l.algo, l.id, out[i], want, ops[i])
				return false
			}
		}
	}
	return true
}

// prewarm drives every link's first trace event through the server (and
// the -verify checkers), so maps, slabs and the closed loop are all
// established before the timed region. Measurements are then reset; the
// warmed link state is kept. Returns false on error.
func (dr *driver) prewarm() bool {
	if dr.udp != nil {
		return dr.prewarmUDP()
	}
	bb := batchBuilder{links: dr.links}
	ops := make([]linkstore.Op, 0, dr.opt.batch)
	batch := make([]*link, 0, dr.opt.batch)
	out := make([]int32, dr.opt.batch)
	for remaining := len(dr.links); remaining > 0; {
		ops, batch = bb.fill(min(dr.opt.batch, remaining), time.Now(), ops, batch)
		if len(ops) == 0 {
			break // every remaining link is idle-gapped or exhausted
		}
		if _, err := dr.d.Decide(ops, out); err != nil {
			dr.res.err = err
			return false
		}
		if !dr.absorb(ops, batch, out) {
			return false
		}
		remaining -= len(ops)
	}
	dr.res.decisions = 0
	dr.res.lat = stats.Histogram{}
	dr.res.rateCounts = [maxRates]uint64{}
	return true
}

// run replays until stop flips: classic stop-and-wait batches, or — for a
// pipelined transport with -pipeline > 1 — a sliding window of batches in
// flight.
func (dr *driver) run(stop *atomic.Bool) clientResult {
	if dr.udp != nil {
		return dr.runUDP(stop)
	}
	if ad, ok := dr.d.(asyncDecider); ok && dr.opt.pipeline > 1 {
		return dr.runPipelined(ad, stop)
	}
	bb := batchBuilder{links: dr.links, cold: dr.pop, hotFrac: dr.opt.hotFrac}
	ops := make([]linkstore.Op, 0, dr.opt.batch)
	batch := make([]*link, 0, dr.opt.batch)
	out := make([]int32, dr.opt.batch)
	for !stop.Load() {
		ops, batch = bb.fill(dr.opt.batch, time.Now(), ops, batch)
		if len(ops) == 0 {
			time.Sleep(time.Millisecond) // every link is waiting out its idle gap
			continue
		}
		t0 := time.Now()
		if _, err := dr.d.Decide(ops, out); err != nil {
			dr.res.err = err
			return dr.res
		}
		dr.res.lat.Observe(time.Since(t0))
		dr.res.decisions += uint64(len(ops))
		if !dr.absorb(ops, batch, out) {
			return dr.res
		}
	}
	return dr.res
}

// pipeSlot is one in-flight batch of the pipelined window.
type pipeSlot struct {
	bb     batchBuilder
	ops    []linkstore.Op
	batch  []*link
	out    []int32
	p      *server.Pending
	t0     time.Time
	busy   bool
	filled bool // batch built but not yet accepted by Submit
}

// runPipelined keeps up to -pipeline batches in flight on one
// connection. The client's links are partitioned into one cohort per
// window slot: a cohort is an independent closed loop (each of its links
// sees its previous decision before its next frame), so deep pipelining
// never reorders a link's feedback stream — exactly the property the
// per-link -verify check proves.
func (dr *driver) runPipelined(ad asyncDecider, stop *atomic.Bool) clientResult {
	depth := dr.opt.pipeline
	if depth > len(dr.links) {
		depth = len(dr.links)
	}
	slots := make([]pipeSlot, depth)
	for i := range slots {
		slots[i].ops = make([]linkstore.Op, 0, dr.opt.batch)
		slots[i].batch = make([]*link, 0, dr.opt.batch)
		slots[i].out = make([]int32, dr.opt.batch)
	}
	for i, l := range dr.links {
		s := &slots[i%depth]
		s.bb.links = append(s.bb.links, l)
	}
	queue := make([]int, 0, depth) // busy slots in submission order
	for {
		stopped := stop.Load()
		if !stopped {
			for si := range slots {
				s := &slots[si]
				if s.busy {
					continue
				}
				if !s.filled {
					s.ops, s.batch = s.bb.fill(dr.opt.batch, time.Now(), s.ops, s.batch)
					if len(s.ops) == 0 {
						continue // cohort fully idle right now
					}
					s.filled = true
				}
				// Latency is stamped after the batch is built, like the
				// stop-and-wait path: it measures submit → response, not
				// client-side trace synthesis.
				t0 := time.Now()
				p, err := ad.Submit(s.ops)
				if errors.Is(err, server.ErrPipelineFull) {
					// Response-byte budget reached before the window depth
					// (deep -pipeline with a large -batch): drain one
					// response first; the built batch stays queued.
					break
				}
				if err != nil {
					dr.res.err = err
					return dr.res
				}
				s.p, s.t0, s.busy, s.filled = p, t0, true, false
				queue = append(queue, si)
			}
		}
		if len(queue) == 0 {
			if stopped {
				return dr.res
			}
			time.Sleep(time.Millisecond) // every cohort is idle-gapped
			continue
		}
		si := queue[0]
		queue = append(queue[:0], queue[1:]...)
		s := &slots[si]
		if _, err := ad.Wait(s.p, s.out); err != nil {
			dr.res.err = err
			return dr.res
		}
		dr.res.lat.Observe(time.Since(s.t0))
		dr.res.decisions += uint64(len(s.ops))
		if !dr.absorb(s.ops, s.batch, s.out) {
			return dr.res
		}
		s.busy = false
	}
}

// udpSlot is one in-flight datagram batch of the UDP window.
type udpSlot struct {
	bb    batchBuilder
	ops   []linkstore.Op
	batch []*link
	out   []int32
	p     *server.UDPPending
	t0    time.Time
	busy  bool
}

// submitUDP sends slot s's built batch and, with -verify, registers it
// with the arrival-driven mirror: the bare checkers advance only when a
// response proves the server applied it (the OnResponse hook), so a
// batch shed by an overloaded server leaves both sides untouched.
func (dr *driver) submitUDP(s *udpSlot) (*server.UDPPending, error) {
	p, err := dr.udp.Submit(s.ops)
	if err == nil && dr.uv != nil {
		dr.uv.track(p.Seq(), s.ops, s.batch)
	}
	return p, err
}

// absorbUDP applies one answered batch to the closed loop: next rates
// and the chosen-rate histogram (the -verify comparison already ran in
// the OnResponse hook when the response arrived).
func (dr *driver) absorbUDP(s *udpSlot, out []int32) {
	for i, l := range s.batch {
		l.rate = out[i]
		if ri := out[i]; ri >= 0 && int(ri) < maxRates {
			dr.res.rateCounts[ri]++
		}
	}
}

// checkUDPVerify folds the hook-side mismatch (if any) into the client
// result. Called after every Wait — including timed-out ones, since the
// hook also fires for responses that arrive after their timeout.
func (dr *driver) checkUDPVerify() bool {
	if dr.uv == nil || dr.uv.mismatch == "" {
		return true
	}
	dr.res.mismatch = dr.uv.mismatch
	return false
}

// prewarmUDP is prewarm over the datagram transport. A dropped response
// still warms the server side (the request arrived and was applied), so
// the pass completes regardless of injected loss.
func (dr *driver) prewarmUDP() bool {
	s := udpSlot{
		bb:    batchBuilder{links: dr.links},
		ops:   make([]linkstore.Op, 0, dr.opt.batch),
		batch: make([]*link, 0, dr.opt.batch),
		out:   make([]int32, dr.opt.batch),
	}
	for remaining := len(dr.links); remaining > 0; {
		s.ops, s.batch = s.bb.fill(min(dr.opt.batch, remaining), time.Now(), s.ops, s.batch)
		if len(s.ops) == 0 {
			break // every remaining link is idle-gapped or exhausted
		}
		p, err := dr.submitUDP(&s)
		if err != nil {
			dr.res.err = err
			return false
		}
		out, ok, err := dr.udp.Wait(p, s.out)
		if err != nil {
			dr.res.err = err
			return false
		}
		if ok {
			dr.absorbUDP(&s, out)
		}
		if !dr.checkUDPVerify() {
			return false
		}
		remaining -= len(s.ops)
	}
	dr.res.decisions = 0
	dr.res.lat = stats.Histogram{}
	dr.res.rateCounts = [maxRates]uint64{}
	return true
}

// runUDP keeps up to -pipeline datagram batches in flight (cohort
// partitioning as in runPipelined, so per-link feedback order is
// preserved). A timed-out batch is a lost decision: its cohort's links
// keep their current rates and the loop moves on — loss does not poison
// the client, does not end the run, and (with -verify) every response
// that does arrive is still checked byte-for-byte.
func (dr *driver) runUDP(stop *atomic.Bool) clientResult {
	depth := dr.opt.pipeline
	if depth < 1 {
		depth = 1
	}
	if depth > len(dr.links) {
		depth = len(dr.links)
	}
	slots := make([]udpSlot, depth)
	for i := range slots {
		slots[i].ops = make([]linkstore.Op, 0, dr.opt.batch)
		slots[i].batch = make([]*link, 0, dr.opt.batch)
		slots[i].out = make([]int32, dr.opt.batch)
	}
	for i, l := range dr.links {
		s := &slots[i%depth]
		s.bb.links = append(s.bb.links, l)
	}
	queue := make([]int, 0, depth) // busy slots in submission order
	for {
		stopped := stop.Load()
		if !stopped {
			for si := range slots {
				s := &slots[si]
				if s.busy {
					continue
				}
				s.ops, s.batch = s.bb.fill(dr.opt.batch, time.Now(), s.ops, s.batch)
				if len(s.ops) == 0 {
					continue // cohort fully idle right now
				}
				t0 := time.Now()
				p, err := dr.submitUDP(s)
				if err != nil {
					dr.res.err = err
					return dr.res
				}
				s.p, s.t0, s.busy = p, t0, true
				queue = append(queue, si)
			}
		}
		if len(queue) == 0 {
			if stopped {
				return dr.res
			}
			time.Sleep(time.Millisecond) // every cohort is idle-gapped
			continue
		}
		si := queue[0]
		queue = append(queue[:0], queue[1:]...)
		s := &slots[si]
		out, ok, err := dr.udp.Wait(s.p, s.out)
		if err != nil {
			dr.res.err = err
			return dr.res
		}
		if ok {
			dr.res.lat.Observe(time.Since(s.t0))
			dr.res.decisions += uint64(len(s.ops))
			dr.absorbUDP(s, out)
		}
		if !dr.checkUDPVerify() {
			return dr.res
		}
		s.busy = false
	}
}

func mixFor(name string) (trace.Mix, error) {
	switch name {
	case "clean", "mobile":
		return trace.Mix{}, nil
	case "hidden":
		// Table 1 geometry: most collisions leave the preamble intact
		// (collision-tagged feedback); of the rest, about half are saved
		// by the postamble.
		return trace.Mix{CollisionProb: 0.35, PreambleLossProb: 0.15, PostambleProb: 0.5}, nil
	default:
		return trace.Mix{}, fmt.Errorf("unknown mix %q (want clean | mobile | hidden)", name)
	}
}

// makeTraces builds the shared trace pool for the chosen mix. Links share
// traces (each with a private seeded start offset), so the pool stays
// small regardless of -links.
func makeTraces(opt options) []*trace.LinkTrace {
	gen := func(model *channel.Model, seed int64) *trace.LinkTrace {
		return trace.Generate(trace.GenConfig{
			Model:    model,
			Duration: 1.0,
			Seed:     seed,
		})
	}
	rng := rand.New(rand.NewSource(opt.seed))
	switch opt.mix {
	case "mobile":
		return []*trace.LinkTrace{
			gen(channel.NewWalkingModel(rng,
				channel.LinearTrajectory{StartDist: 2, Speed: 1.2},
				channel.PathLoss{RefSNRdB: 26, RefDist: 1, Exponent: 2.2}), opt.seed+1),
			gen(channel.NewStaticModel(18, channel.NewRayleigh(rng, 40, 0)), opt.seed+2),
		}
	case "hidden":
		return []*trace.LinkTrace{
			gen(channel.NewStaticModel(22, channel.NewRayleigh(rng, 10, 0)), opt.seed+1),
		}
	default: // clean
		return []*trace.LinkTrace{
			gen(channel.NewStaticModel(20, nil), opt.seed+1),
		}
	}
}
