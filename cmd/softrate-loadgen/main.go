// Command softrate-loadgen replays link traces against the softrated
// decision service and reports sustained decision throughput, latency
// quantiles and store churn. It is the closed adaptation loop at scale:
// per link it walks a trace.FrameIter (decide → transmit → observe), feeds
// the observed outcome back, and uses the server's answer as the next
// frame's rate.
//
// Usage:
//
//	softrate-loadgen -clients 4 -links 10000 -duration 10s          # in-process server
//	softrate-loadgen -addr 127.0.0.1:7447 -clients 8 -links 100000  # against softrated
//	softrate-loadgen -mix hidden -verify                            # hidden-terminal mix + determinism check
//
// With -verify every decision is checked byte-for-byte against a bare
// per-link core.SoftRate controller fed the identical feedback sequence —
// the acceptance property of the decision service, including across TTL
// evictions (archived state makes them transparent).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"softrate/internal/channel"
	"softrate/internal/core"
	"softrate/internal/linkstore"
	"softrate/internal/server"
	"softrate/internal/stats"
	"softrate/internal/trace"
)

type options struct {
	addr     string
	clients  int
	links    int
	duration time.Duration
	batch    int
	mix      string
	shards   int
	ttl      time.Duration
	idleFrac float64
	seed     int64
	verify   bool
	minRate  float64
}

func main() {
	var opt options
	flag.StringVar(&opt.addr, "addr", "", "softrated TCP address; empty runs an in-process server")
	flag.IntVar(&opt.clients, "clients", 4, "concurrent load-generating clients")
	flag.IntVar(&opt.links, "links", 10000, "concurrent links across all clients")
	flag.DurationVar(&opt.duration, "duration", 10*time.Second, "run length")
	flag.IntVar(&opt.batch, "batch", 128, "feedback records per request batch")
	flag.StringVar(&opt.mix, "mix", "mobile", "workload mix: clean | mobile | hidden")
	flag.IntVar(&opt.shards, "shards", 64, "in-process server: link store shards")
	flag.DurationVar(&opt.ttl, "ttl", 500*time.Millisecond, "in-process server: idle link TTL (0 = never evict)")
	flag.Float64Var(&opt.idleFrac, "idle-frac", 0.1, "fraction of links that transmit rarely (exercises eviction)")
	flag.Int64Var(&opt.seed, "seed", 1, "base PRNG seed (trace generation and replay)")
	flag.BoolVar(&opt.verify, "verify", false, "check every decision against a bare per-link controller (with -addr the server must be fresh: reused link IDs carry state from earlier runs)")
	flag.Float64Var(&opt.minRate, "min-rate", 0, "fail unless this many decisions/sec are sustained")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if opt.clients < 1 || opt.links < opt.clients || opt.batch < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: need clients >= 1, links >= clients, batch >= 1")
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// decider abstracts the two transports.
type decider interface {
	Decide(ops []linkstore.Op, out []int32) ([]int32, error)
}

type inProcess struct{ srv *server.Server }

func (p inProcess) Decide(ops []linkstore.Op, out []int32) ([]int32, error) {
	return p.srv.Decide(ops, out), nil
}

type tcpDecider struct{ cli *server.Client }

func (t tcpDecider) Decide(ops []linkstore.Op, out []int32) ([]int32, error) {
	return t.cli.Decide(ops, out)
}

// link is one replayed sender.
type link struct {
	id   uint64
	iter *trace.FrameIter
	rate int32
	bare *core.SoftRate

	// Bursty links send one frame, then stay silent for idleGap — long
	// enough to cross the server's TTL, so they exercise eviction and
	// transparent restoration. Zero means always active.
	idleGap time.Duration
	nextAt  time.Time
}

type clientResult struct {
	decisions uint64
	mismatch  string
	err       error
	lat       stats.Histogram
}

func run(opt options) error {
	mix, err := mixFor(opt.mix)
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "loadgen: generating traces (mix=%s)...\n", opt.mix)
	traces := makeTraces(opt)

	var srv *server.Server
	transport := "tcp:" + opt.addr
	if opt.addr == "" {
		srv = server.New(server.Config{Store: linkstore.Config{
			Shards: opt.shards,
			TTL:    opt.ttl,
		}})
		transport = "in-process"
	}

	// Partition links across clients.
	clients := make([][]*link, opt.clients)
	idleGap := 2 * opt.ttl
	if idleGap <= 0 {
		idleGap = time.Second
	}
	for i := 0; i < opt.links; i++ {
		lt := traces[i%len(traces)]
		l := &link{
			id:   uint64(i) + 1,
			iter: lt.FramesMix(opt.seed+int64(i)*7919, mix),
		}
		if float64(i) < opt.idleFrac*float64(opt.links) {
			l.idleGap = idleGap
		}
		if opt.verify {
			l.bare = core.New(core.DefaultConfig())
		}
		clients[i%opt.clients] = append(clients[i%opt.clients], l)
	}

	fmt.Fprintf(os.Stderr, "loadgen: %d clients x ~%d links, batch %d, %v via %s\n",
		opt.clients, opt.links/opt.clients, opt.batch, opt.duration, transport)
	if opt.verify && srv == nil {
		fmt.Fprintln(os.Stderr, "loadgen: note: -verify against a remote server assumes link IDs 1..links are fresh; a server that already served them will (correctly) report mismatches")
	}

	var stop atomic.Bool
	time.AfterFunc(opt.duration, func() { stop.Store(true) })

	results := make([]clientResult, opt.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opt.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var d decider
			if srv != nil {
				d = inProcess{srv}
			} else {
				cli, err := server.Dial(opt.addr)
				if err != nil {
					results[c].err = err
					return
				}
				defer cli.Close()
				d = tcpDecider{cli}
			}
			results[c] = drive(d, clients[c], opt, &stop)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total uint64
	var lat stats.Histogram
	for c := range results {
		if results[c].err != nil {
			return results[c].err
		}
		if results[c].mismatch != "" {
			return fmt.Errorf("determinism violation: %s", results[c].mismatch)
		}
		total += results[c].decisions
		lat.Merge(&results[c].lat)
	}

	rate := float64(total) / elapsed.Seconds()
	fmt.Printf("decisions: %d in %.1fs = %.0f decisions/sec\n", total, elapsed.Seconds(), rate)
	fmt.Printf("latency per batch of %d: p50=%v p99=%v max=%v\n",
		opt.batch, lat.Quantile(0.5), lat.Quantile(0.99), lat.Max())
	if srv != nil {
		st := srv.Stats()
		fmt.Printf("store: live=%d archived=%d evictions=%d creates=%d restores=%d\n",
			st.Store.Live, st.Store.Archived, st.Store.Evictions, st.Store.Creates, st.Store.Restores)
		fmt.Printf("kinds: ber=%d collision=%d silent=%d postamble=%d\n",
			st.Kinds[0], st.Kinds[1], st.Kinds[2], st.Kinds[3])
	} else {
		fmt.Println("store: n/a (remote server; see softrated -stats)")
	}
	if opt.verify {
		fmt.Printf("verify: %d decisions byte-identical to bare controllers\n", total)
	}
	if opt.minRate > 0 && rate < opt.minRate {
		return fmt.Errorf("sustained %.0f decisions/sec, below the required %.0f", rate, opt.minRate)
	}
	return nil
}

// drive runs one client's replay loop until stop flips.
func drive(d decider, links []*link, opt options, stop *atomic.Bool) clientResult {
	var res clientResult
	ops := make([]linkstore.Op, 0, opt.batch)
	batch := make([]*link, 0, opt.batch)
	out := make([]int32, opt.batch)
	cursor := 0
	skipped := 0
	for !stop.Load() {
		ops = ops[:0]
		batch = batch[:0]
		skipped = 0
		for len(ops) < opt.batch {
			l := links[cursor]
			cursor++
			if cursor == len(links) {
				cursor = 0
			}
			if l.idleGap > 0 {
				if now := time.Now(); now.Before(l.nextAt) {
					// All-idle guard: don't spin forever filling a batch
					// no link is willing to join.
					if skipped++; skipped > 2*len(links) {
						break
					}
					continue
				} else {
					l.nextAt = now.Add(l.idleGap)
				}
			}
			ev, ok := l.iter.Next(int(l.rate))
			if !ok {
				if skipped++; skipped > 2*len(links) {
					break
				}
				continue
			}
			ops = append(ops, linkstore.Op{
				LinkID:    l.id,
				Kind:      ev.Kind,
				RateIndex: int32(ev.RateIndex),
				BER:       ev.BER,
			})
			batch = append(batch, l)
		}
		if len(ops) == 0 {
			time.Sleep(time.Millisecond) // every link is waiting out its idle gap
			continue
		}
		t0 := time.Now()
		if _, err := d.Decide(ops, out); err != nil {
			res.err = err
			return res
		}
		res.lat.Observe(time.Since(t0))
		res.decisions += uint64(len(ops))
		for i, l := range batch {
			l.rate = out[i]
			if l.bare != nil {
				want := l.bare.Apply(ops[i].Kind, int(ops[i].RateIndex), ops[i].BER)
				if int32(want) != out[i] {
					res.mismatch = fmt.Sprintf("link %d: server decided %d, bare controller %d (op %+v)",
						l.id, out[i], want, ops[i])
					return res
				}
			}
		}
	}
	return res
}

func mixFor(name string) (trace.Mix, error) {
	switch name {
	case "clean", "mobile":
		return trace.Mix{}, nil
	case "hidden":
		// Table 1 geometry: most collisions leave the preamble intact
		// (collision-tagged feedback); of the rest, about half are saved
		// by the postamble.
		return trace.Mix{CollisionProb: 0.35, PreambleLossProb: 0.15, PostambleProb: 0.5}, nil
	default:
		return trace.Mix{}, fmt.Errorf("unknown mix %q (want clean | mobile | hidden)", name)
	}
}

// makeTraces builds the shared trace pool for the chosen mix. Links share
// traces (each with a private seeded start offset), so the pool stays
// small regardless of -links.
func makeTraces(opt options) []*trace.LinkTrace {
	gen := func(model *channel.Model, seed int64) *trace.LinkTrace {
		return trace.Generate(trace.GenConfig{
			Model:    model,
			Duration: 1.0,
			Seed:     seed,
		})
	}
	rng := rand.New(rand.NewSource(opt.seed))
	switch opt.mix {
	case "mobile":
		return []*trace.LinkTrace{
			gen(channel.NewWalkingModel(rng,
				channel.LinearTrajectory{StartDist: 2, Speed: 1.2},
				channel.PathLoss{RefSNRdB: 26, RefDist: 1, Exponent: 2.2}), opt.seed+1),
			gen(channel.NewStaticModel(18, channel.NewRayleigh(rng, 40, 0)), opt.seed+2),
		}
	case "hidden":
		return []*trace.LinkTrace{
			gen(channel.NewStaticModel(22, channel.NewRayleigh(rng, 10, 0)), opt.seed+1),
		}
	default: // clean
		return []*trace.LinkTrace{
			gen(channel.NewStaticModel(20, nil), opt.seed+1),
		}
	}
}
