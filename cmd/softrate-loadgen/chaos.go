package main

// Chaos-harness pieces of the loadgen: the arrival-driven -verify mirror
// for the UDP transport (exactness even while the server sheds), and the
// deliberately stalled TCP clients that exercise the server's
// slow-client eviction.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"encoding/binary"

	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/linkstore"
	"softrate/internal/server"
)

// maxTrackedFlights bounds the verifier's memory when the server sheds
// heavily: entries older than this many submissions are forgotten (a
// response arriving later than that is effectively impossible on
// loopback).
const maxTrackedFlights = 4096

// udpFlight is one submitted-but-unproven batch: the ops as sent and the
// links they came from, retained until a response proves the server
// applied them.
type udpFlight struct {
	ops   []linkstore.Op
	links []*link
}

// udpVerifier keeps the -verify mirror for the datagram transport. The
// mirror advances at response ARRIVAL (the client's OnResponse hook),
// not at submit time: a response existing proves the server applied that
// batch, and the hook fires before the -udp-drop shim, so an
// injected-drop response still advances the mirror (the server really
// did apply it) while a server-side shed — which produces no response
// because the ops were never decoded, let alone applied — never does.
// Per-link ordering is safe because each link lives in exactly one
// window cohort, and a cohort never has two batches in flight at once.
//
// The verifier is driven entirely from the owning client goroutine
// (Submit and Wait are single-goroutine), so it needs no locking.
type udpVerifier struct {
	inflight map[uint32]*udpFlight
	order    []uint32 // submission order, for pruning
	mismatch string
}

func newUDPVerifier() *udpVerifier {
	return &udpVerifier{inflight: make(map[uint32]*udpFlight)}
}

// track records one submitted batch under its datagram seq. The ops and
// links are copied: the driver reuses its slot buffers long before a
// late response can arrive.
func (v *udpVerifier) track(seq uint32, ops []linkstore.Op, links []*link) {
	v.inflight[seq] = &udpFlight{
		ops:   append([]linkstore.Op(nil), ops...),
		links: append([]*link(nil), links...),
	}
	v.order = append(v.order, seq)
	for len(v.order) > 0 && len(v.inflight) > maxTrackedFlights {
		delete(v.inflight, v.order[0])
		v.order = v.order[1:]
	}
}

// onResponse is the client's OnResponse hook: advance the bare checkers
// with the proven-applied ops and compare the server's rates
// byte-for-byte. Duplicates find no entry (the first arrival consumed
// it) and advance nothing.
func (v *udpVerifier) onResponse(seq uint32, rates []byte) {
	f, ok := v.inflight[seq]
	if !ok {
		return
	}
	delete(v.inflight, seq)
	if v.mismatch != "" {
		return
	}
	if len(rates) != len(f.ops) {
		v.mismatch = fmt.Sprintf("udp seq %d: %d rates for a batch of %d", seq, len(rates), len(f.ops))
		return
	}
	for i, l := range f.links {
		var want int
		if l.bareSoft != nil {
			want = l.bareSoft.Apply(f.ops[i].Kind, int(f.ops[i].RateIndex), f.ops[i].BER)
		} else {
			want = l.bare.Apply(ctl.Feedback{
				Kind:      f.ops[i].Kind,
				RateIndex: int(f.ops[i].RateIndex),
				BER:       f.ops[i].BER,
				SNRdB:     float64(f.ops[i].SNRdB),
				Airtime:   float64(f.ops[i].Airtime),
				Delivered: f.ops[i].Delivered,
			})
		}
		if int32(want) != int32(rates[i]) {
			v.mismatch = fmt.Sprintf("algo %d link %d: server decided %d over udp, bare controller %d (op %+v)",
				l.algo, l.id, rates[i], want, f.ops[i])
			return
		}
	}
}

// stallLinkBase namespaces the stalled clients' link IDs far away from
// every replayed population (replay links use registry algo IDs 1..5 in
// the high bits; cold populations additionally set bit 32).
const stallLinkBase = uint64(0x7E) << 40

// runStallConns opens n TCP connections that submit valid batches but
// never read a single response byte — the pathological peer the server's
// -tcp-write-timeout eviction exists for. Each connection keeps writing
// until the server evicts it (reset/EPIPE) or stop closes; the links it
// touches live in a reserved ID namespace, so the -verify populations
// never see its state. Returns a WaitGroup the caller waits on after
// closing stop.
func runStallConns(addr string, n int, stop <-chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer conn.Close()
			ops := []linkstore.Op{{LinkID: stallLinkBase | uint64(i+1), Kind: core.KindBER, BER: 1e-5}}
			payload := server.AppendOpsV3(nil, 0, ops)
			frame := make([]byte, 4, 4+len(payload))
			binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
			frame = append(frame, payload...)
			for {
				select {
				case <-stop:
					return
				default:
				}
				conn.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
				if _, err := conn.Write(frame); err != nil {
					if ne, ok := err.(net.Error); ok && ne.Timeout() {
						// Our own send buffer is full: the server has stopped
						// reading because its responses to us are stuck — which
						// is the point. Keep holding the socket open.
						continue
					}
					return // evicted by the server's write deadline
				}
			}
		}(i)
	}
	return &wg
}
