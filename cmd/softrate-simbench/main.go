// Command softrate-simbench measures the simulation hot path — the
// encode/channel/decode chain that regenerates every paper artifact — and
// emits the committed BENCH_experiments.json artifact next to the loadgen
// bench artifacts. It is the figure-reproduction counterpart of
// softrate-loadgen's -bench-out: frames/s and decoded Mbit/s for the
// decoders and the full TX→channel→RX chain at the Fig 7/9 frame shape,
// steady-state allocations per operation, and wall times for the heaviest
// PHY-bound harnesses.
//
//	softrate-simbench -duration 2s -format json -out BENCH_experiments.json
//
// CI runs it with floors as a throughput-regression guard:
//
//	softrate-simbench -min-fig79-fps 80 -min-logmap-fps 220 -min-batch-speedup 2 -require-zero-allocs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"softrate/internal/benchtrend"
	"softrate/internal/channel"
	"softrate/internal/coding"
	"softrate/internal/experiments"
	"softrate/internal/phy"
	"softrate/internal/rate"
	"softrate/internal/softphy"
)

// prePRBaseline records the last pre-optimization measurement of this
// suite (PR 5 tree, 1-core Intel Xeon @ 2.10GHz, the host that produced
// the previously committed artifact), so the committed
// BENCH_experiments.json always carries the before/after pair the
// acceptance floor is defined against. The decode row is the single-frame
// scalar decoder the lockstep batch engine replaces as the hot path.
var prePRBaseline = baseline{
	Host:                   "1-core Intel Xeon @ 2.10GHz",
	TxRxFig79FramesPerSec:  110.1,
	TxRxFig79AllocsPerOp:   0,
	DecodeBCJRFramesPerSec: 72.6,
	DecodeBCJRAllocsPerOp:  0,
	DecodeBCJRBytesPerOp:   0,
}

type baseline struct {
	Host                   string  `json:"host"`
	TxRxFig79FramesPerSec  float64 `json:"txrx_fig79_frames_per_sec"`
	TxRxFig79AllocsPerOp   float64 `json:"txrx_fig79_allocs_per_op"`
	DecodeBCJRFramesPerSec float64 `json:"decode_bcjr_frames_per_sec"`
	DecodeBCJRAllocsPerOp  float64 `json:"decode_bcjr_allocs_per_op"`
	DecodeBCJRBytesPerOp   float64 `json:"decode_bcjr_bytes_per_op"`
}

// benchResult is one measured operation class.
type benchResult struct {
	Name string `json:"name"`
	// NsPerOp is the mean wall time of one operation.
	NsPerOp float64 `json:"ns_per_op"`
	// FramesPerSec is 1e9/NsPerOp: each op processes one frame.
	FramesPerSec float64 `json:"frames_per_sec"`
	// DecodedMbitPerSec is info bits decoded per second, in Mbit/s.
	DecodedMbitPerSec float64 `json:"decoded_mbit_per_sec,omitempty"`
	// AllocsPerOp is the steady-state heap allocation count (warm
	// workspace); the CI gate requires 0 for the decode and chain benches.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// harnessResult is the wall time of one full experiment harness run.
type harnessResult struct {
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
}

type report struct {
	Schema    string          `json:"schema"`
	GoVersion string          `json:"go_version"`
	NumCPU    int             `json:"num_cpu"`
	DurationS float64         `json:"bench_duration_sec"`
	Benches   []benchResult   `json:"benches"`
	Harnesses []harnessResult `json:"harnesses"`
	Baseline  baseline        `json:"baseline_pre_pr"`
	// SpeedupTx compares the batched Fig 7/9 chain (the production path)
	// against the pre-PR sequential chain; SpeedupDec compares the batch-8
	// lockstep log-MAP decode against the pre-PR single-frame decode.
	SpeedupTx  float64 `json:"txrx_speedup_vs_pre_pr"`
	SpeedupDec float64 `json:"decode_speedup_vs_pre_pr"`
	// SpeedupBatch is the in-run ratio of the batched to the sequential
	// Fig 7/9 chain — host-independent, which is what the CI gate checks.
	SpeedupBatch float64 `json:"txrx_batch_vs_sequential"`
}

// measure runs op in a closed loop for roughly d and returns mean ns/op
// and the steady-state allocs/op.
func measure(d time.Duration, op func()) (nsPerOp, allocsPerOp float64) {
	op() // warm every scratch buffer
	allocsPerOp = testing.AllocsPerRun(5, op)
	start := time.Now()
	n := 0
	for time.Since(start) < d {
		op()
		n++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n), allocsPerOp
}

// fig79LLRs builds the decoder input of a Fig 7/9-shaped payload: 244 info
// bytes (240 + FCS) at rate 1/2 under AWGN.
func fig79LLRs(nInfo int) []float64 {
	rng := rand.New(rand.NewSource(3))
	info := make([]byte, nInfo)
	for i := range info {
		info[i] = byte(rng.Intn(2))
	}
	coded := coding.Encode(info)
	llrs := make([]float64, len(coded))
	for i, b := range coded {
		x := -1.0
		if b != 0 {
			x = 1.0
		}
		llrs[i] = 2 * (x + 0.7*rng.NormFloat64()) / (0.7 * 0.7)
	}
	return llrs
}

func main() {
	var (
		duration     = flag.Duration("duration", 2*time.Second, "measurement window per bench")
		format       = flag.String("format", "text", "output format: text or json")
		out          = flag.String("out", "", "also write the JSON report to this file")
		trendOut     = flag.String("trend-out", "", "append a stamped throughput record (git sha, go version, cpus) to this JSONL trend ledger (e.g. BENCH_TREND.jsonl); gate it with softrate-benchtrend")
		minFPS       = flag.Float64("min-fig79-fps", 0, "fail below this many frames/s on the batched Fig 7/9 chain (0 = off)")
		minLogmapFPS = flag.Float64("min-logmap-fps", 0, "fail below this many frames/s on the batch-8 log-MAP decode (0 = off)")
		minBatchSpd  = flag.Float64("min-batch-speedup", 0, "fail if the batched Fig 7/9 chain is not this many times faster than the sequential one (0 = off)")
		zeroAllocs   = flag.Bool("require-zero-allocs", false, "fail if any warm decode/chain bench allocates")
	)
	flag.Parse()

	rep := report{
		Schema:    "softrate-simbench/v1",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		DurationS: duration.Seconds(),
		Baseline:  prePRBaseline,
	}

	const nInfo = (240 + 4) * 8 // Fig 7/9 payload shape
	llrs := fig79LLRs(nInfo)
	var dec coding.Workspace
	var bdec coding.BatchWorkspace

	// addBench measures op, which processes framesPerOp frames per call,
	// and reports the per-frame rate.
	addBench := func(name string, framesPerOp, bits int, op func()) benchResult {
		ns, allocs := measure(*duration, op)
		perFrame := ns / float64(framesPerOp)
		r := benchResult{
			Name:         name,
			NsPerOp:      perFrame,
			FramesPerSec: 1e9 / perFrame,
			AllocsPerOp:  allocs,
		}
		if bits > 0 {
			r.DecodedMbitPerSec = float64(bits) * (1e9 / perFrame) / 1e6
		}
		rep.Benches = append(rep.Benches, r)
		fmt.Fprintf(os.Stderr, "%-24s %12.0f ns/frame %10.1f frames/s %8.3f Mbit/s %6g allocs/op\n",
			name, r.NsPerOp, r.FramesPerSec, r.DecodedMbitPerSec, r.AllocsPerOp)
		return r
	}

	// batchBench decodes B distinct Fig 7/9-shaped frames per op through
	// the lockstep batch engine — the decode work the batched receive path
	// performs per flush.
	batchBench := func(name string, B int) benchResult {
		jobs := make([]coding.BatchJob, B)
		for i := range jobs {
			jobs[i] = coding.BatchJob{LLRs: fig79LLRs(nInfo), NInfo: nInfo}
		}
		return addBench(name, B, nInfo, func() { bdec.DecodeBCJRBatch(jobs, coding.LogMAP) })
	}

	// decode_bcjr_logmap is the production log-MAP decode path: the batch-8
	// lockstep engine, reported per frame. The single-frame scalar decoder
	// it replaced stays measured as decode_bcjr_logmap_single.
	decodeRes := batchBench("decode_bcjr_logmap", 8)
	batchBench("decode_bcjr_batch64", 64)
	addBench("decode_bcjr_logmap_single", 1, nInfo, func() { dec.DecodeBCJR(llrs, nInfo, coding.LogMAP) })
	addBench("decode_bcjr_maxlog", 1, nInfo, func() { dec.DecodeBCJR(llrs, nInfo, coding.MaxLog) })
	addBench("decode_viterbi", 1, nInfo, func() { dec.DecodeViterbi(llrs, nInfo) })

	// The Fig 7/9 chain: transmit, deliver over a static 14 dB channel,
	// summarize hints — the exact per-frame work of collectFrames, measured
	// both per-frame (sequential) and through the batched receive path.
	cfg := phy.DefaultConfig()
	ws := phy.NewWorkspace()
	link := &phy.Link{Cfg: cfg, Model: channel.NewStaticModel(14, nil), Rng: rand.New(rand.NewSource(2)), WS: ws}
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 240)
	rng.Read(payload)
	frame := phy.Frame{Header: []byte{9, 9, 9, 9}, Payload: payload, Rate: rate.ByIndex(4)}
	fi := 0
	seqChainRes := addBench("txrx_fig79_chain", 1, nInfo, func() {
		tx := phy.TransmitWS(ws, cfg, frame)
		rx := link.Deliver(tx, float64(fi)*0.01, nil)
		fi++
		if rx.Detected {
			_ = softphy.FrameBER(rx.Hints)
		}
	})
	chainRes := addBench("txrx_fig79_chain_batch", 8, nInfo, func() {
		for k := 0; k < 8; k++ {
			tx := phy.TransmitWS(ws, cfg, frame)
			link.QueueDeliver(tx, float64(fi)*0.01, nil)
			fi++
		}
		for _, rx := range link.FlushDeliveries() {
			if rx.Detected {
				_ = softphy.FrameBER(rx.Hints)
			}
		}
	})

	// Whole-harness wall times for the PHY-dominated figures.
	for _, id := range []string{"fig7", "fig9"} {
		start := time.Now()
		if _, err := experiments.Run(id, experiments.Options{Scale: 0.1, Seed: 1}); err != nil {
			fmt.Fprintf(os.Stderr, "harness %s: %v\n", id, err)
			os.Exit(1)
		}
		h := harnessResult{Name: id + "_scale0.1", WallMs: float64(time.Since(start).Microseconds()) / 1e3}
		rep.Harnesses = append(rep.Harnesses, h)
		fmt.Fprintf(os.Stderr, "%-24s %12.1f ms wall\n", h.Name, h.WallMs)
	}

	rep.SpeedupTx = chainRes.FramesPerSec / prePRBaseline.TxRxFig79FramesPerSec
	rep.SpeedupDec = decodeRes.FramesPerSec / prePRBaseline.DecodeBCJRFramesPerSec
	rep.SpeedupBatch = chainRes.FramesPerSec / seqChainRes.FramesPerSec

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *format == "json" {
		os.Stdout.Write(blob)
	} else {
		fmt.Printf("fig79 chain: %.1f frames/s (%.2fx pre-PR), decode: %.1f frames/s (%.2fx pre-PR)\n",
			chainRes.FramesPerSec, rep.SpeedupTx, decodeRes.FramesPerSec, rep.SpeedupDec)
	}
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *trendOut != "" {
		// Only higher-is-better rates go in the ledger: the gate compares
		// against the historical median with a minimum ratio.
		metrics := map[string]float64{"txrx_batch_vs_sequential": rep.SpeedupBatch}
		for _, b := range rep.Benches {
			metrics[b.Name+".frames_per_sec"] = b.FramesPerSec
		}
		if err := benchtrend.Append(*trendOut, benchtrend.Stamp("simbench", metrics)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	failed := false
	if *minFPS > 0 && chainRes.FramesPerSec < *minFPS {
		fmt.Fprintf(os.Stderr, "FAIL: batched fig79 chain %.1f frames/s below floor %.1f\n", chainRes.FramesPerSec, *minFPS)
		failed = true
	}
	if *minLogmapFPS > 0 && decodeRes.FramesPerSec < *minLogmapFPS {
		fmt.Fprintf(os.Stderr, "FAIL: batch-8 log-MAP decode %.1f frames/s below floor %.1f\n", decodeRes.FramesPerSec, *minLogmapFPS)
		failed = true
	}
	if *minBatchSpd > 0 && rep.SpeedupBatch < *minBatchSpd {
		fmt.Fprintf(os.Stderr, "FAIL: batched fig79 chain only %.2fx the sequential chain, want %.2fx\n", rep.SpeedupBatch, *minBatchSpd)
		failed = true
	}
	if *zeroAllocs {
		for _, b := range rep.Benches {
			if b.AllocsPerOp != 0 {
				fmt.Fprintf(os.Stderr, "FAIL: %s allocates %g per op in steady state, want 0\n", b.Name, b.AllocsPerOp)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
