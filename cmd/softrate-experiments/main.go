// Command softrate-experiments regenerates the tables and figures of the
// SoftRate paper (SIGCOMM 2009) from this repository's simulation stack.
//
// Usage:
//
//	softrate-experiments -list
//	softrate-experiments -run fig13 [-scale 1.0] [-seed 42] [-workers 4]
//	softrate-experiments -all [-scale 0.25] [-format json|csv]
//
// Scale 1.0 approximates the paper's sample sizes (slow); the default 0.25
// reproduces every shape in a few minutes. Experiments shard into
// independent trials executed across -workers goroutines (default: one
// per CPU); output is byte-identical at any worker count for a fixed
// seed. Tables go to stdout — as aligned text (default), JSON or CSV —
// and per-experiment wall times go to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"softrate/internal/experiments"
)

// report is one experiment's machine-readable output. It carries no
// timing: stdout must be byte-identical across runs for a fixed seed so
// results can be diffed across commits; wall times go to stderr.
type report struct {
	Experiment string               `json:"experiment"`
	Tables     []*experiments.Table `json:"tables"`
}

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiment IDs")
		run     = flag.String("run", "", "comma-separated experiment IDs to run")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.Float64("scale", 0.25, "sample-size scale (1.0 = paper scale)")
		seed    = flag.Int64("seed", 1, "PRNG seed")
		workers = flag.Int("workers", 0, "max concurrent trials (0 = one per CPU)")
		batch   = flag.Int("decode-batch", 0, "frames decoded per lockstep batch (0 = default 8, negative = per-frame decoding); output is byte-identical at any setting")
		format  = flag.String("format", "text", "output format: text, json or csv")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *run != "":
		ids = strings.Split(*run, ",")
	default:
		fmt.Fprintln(os.Stderr, "specify -list, -run <ids> or -all")
		flag.Usage()
		os.Exit(2)
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "unknown -format %q (want text, json or csv)\n", *format)
		os.Exit(2)
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed, Workers: *workers, DecodeBatch: *batch}
	var reports []report
	total := time.Duration(0)
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tables, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		total += elapsed

		switch *format {
		case "text":
			for _, t := range tables {
				t.Fprint(os.Stdout)
			}
		case "csv":
			for _, t := range tables {
				if err := t.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "error: %v\n", err)
					os.Exit(1)
				}
			}
		case "json":
			reports = append(reports, report{Experiment: id, Tables: tables})
		}
		fmt.Fprintf(os.Stderr, "-- %s completed in %v --\n", id, elapsed.Round(time.Millisecond))
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "-- total: %d experiment(s) in %v --\n", len(ids), total.Round(time.Millisecond))
}
