// Command softrate-experiments regenerates the tables and figures of the
// SoftRate paper (SIGCOMM 2009) from this repository's simulation stack.
//
// Usage:
//
//	softrate-experiments -list
//	softrate-experiments -run fig13 [-scale 1.0] [-seed 42]
//	softrate-experiments -all [-scale 0.25]
//
// Scale 1.0 approximates the paper's sample sizes (slow); the default 0.25
// reproduces every shape in a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"softrate/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiment IDs")
		run   = flag.String("run", "", "comma-separated experiment IDs to run")
		all   = flag.Bool("all", false, "run every experiment")
		scale = flag.Float64("scale", 0.25, "sample-size scale (1.0 = paper scale)")
		seed  = flag.Int64("seed", 1, "PRNG seed")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *run != "":
		ids = strings.Split(*run, ",")
	default:
		fmt.Fprintln(os.Stderr, "specify -list, -run <ids> or -all")
		flag.Usage()
		os.Exit(2)
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tables, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("-- %s completed in %v --\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
