// Command softrated runs the SoftRate decision service over TCP: a
// sharded store of per-link §3.3 controllers answering batched feedback
// frames with next-rate decisions (see internal/server for the wire
// format). Pipelined (v3) clients are served automatically — the framing
// is negotiated per request, so one listener serves stop-and-wait v1/v2
// peers and deep-pipeline v3 peers side by side.
//
// Usage:
//
//	softrated -addr :7447 -shards 128 -ttl 30s
//	softrated -addr :7447 -expected-links 2000000   # pre-size for the fleet
//	softrated -addr :7447 -batch-workers 8          # parallel ApplyBatch
//	softrated -addr :7447 -stats 5s                 # periodic stats to stderr
//	softrated -addr :7447 -admin 127.0.0.1:7448     # ops plane (see below)
//
// -admin serves the ops plane on a second listener: /statusz (full JSON
// snapshot), /metrics (the same snapshot as a Prometheus exposition),
// /healthz (200 until draining), /debug/pprof/* and /drainz. POST or GET
// /drainz starts a graceful drain: listeners stop accepting, every
// in-flight pipelined request is answered and flushed, idle connections
// are released, and the process exits cleanly after a final stats dump.
// SIGINT/SIGTERM take the identical drain path (-drain-grace bounds how
// long stragglers may hold it open).
//
// Drive it with cmd/softrate-loadgen (use its -pipeline flag for the v3
// framing).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"softrate/internal/coldstore"
	"softrate/internal/ctl"
	"softrate/internal/faultfs"
	"softrate/internal/linkstore"
	"softrate/internal/obs"
	"softrate/internal/server"
	"softrate/internal/server/shmring"
)

func main() {
	var (
		addr        = flag.String("addr", ":7447", "TCP listen address")
		algo        = flag.String("algo", "softrate", "default algorithm for links whose feedback doesn't name one ("+strings.Join(ctl.Names(), "|")+"); v2 records may select any registered algorithm per link")
		shards      = flag.Int("shards", 64, "lock stripes in the link store (rounded up to a power of two)")
		ttl         = flag.Duration("ttl", 60*time.Second, "idle TTL before a link is evicted from the hot map (0 = never)")
		dropOnEvict = flag.Bool("drop-on-evict", false, "discard evicted link state instead of archiving it")
		statsEvery  = flag.Duration("stats", 0, "print service stats to stderr at this interval (0 = only at exit)")
		expected    = flag.Int("expected-links", 0, "pre-size shard maps and state slabs for this many links (0 = grow on demand)")
		workers     = flag.Int("batch-workers", 0, "fan each batch's shard visits across this many goroutines (<=1 = sequential; decisions are byte-identical either way)")
		adminAddr   = flag.String("admin", "", "serve the HTTP ops plane on this address (/statusz /metrics /healthz /drainz /debug/pprof); empty = off")
		drainGrace  = flag.Duration("drain-grace", 5*time.Second, "graceful-drain deadline: how long /drainz or SIGINT/SIGTERM waits for in-flight connections before force-closing")
		udpAddr     = flag.String("udp", "", "also serve the loss-tolerant UDP datagram transport on this address; empty = off")
		shmPath     = flag.String("shm", "", "also serve the shared-memory ring transport: create region files at this path (ring i > 0 appends .i) for co-located clients; empty = off")
		shmRings    = flag.Int("shm-rings", 1, "shm region files to create (one co-located client per ring)")
		shmBytes    = flag.Int("shm-ring-bytes", shmring.DefaultCapacity, "per-ring capacity in bytes (power of two)")
		coldDir     = flag.String("cold-dir", "", "spill idle links to an append-only segment log in this directory (bounded resident memory; recovered at startup); empty = keep every idle link in RAM")
		coldFront   = flag.Int("cold-front", 0, "RAM-archive link budget in front of the cold tier (recently evicted links restore without disk I/O); 0 = default "+fmt.Sprint(linkstore.DefaultColdFront))
		compactRat  = flag.Float64("compact-ratio", 0, "dead-byte ratio past which a cold segment is rewritten, in (0,1]; 0 = default "+fmt.Sprint(coldstore.DefaultCompactRatio))
		maxInflight = flag.Int("max-inflight", 0, "bound the Decide batches in flight across all transports: lossless transports queue at the gate, the UDP burst loop sheds; 0 = unbounded")
		writeTO     = flag.Duration("tcp-write-timeout", 0, "evict a TCP peer whose socket stays write-blocked this long (a stuck client can't pin a handler or the drain); 0 = never")
		chaosCold   = flag.Float64("chaos-cold", 0, "inject write-path faults into the cold tier at this per-op probability (testing only; see internal/faultfs); 0 = off")
		chaosSeed   = flag.Int64("chaos-seed", 1, "seed for the -chaos-cold fault schedule (same seed = same faults)")
	)
	flag.Parse()

	spec, ok := ctl.ByName(*algo)
	if !ok {
		fmt.Fprintf(os.Stderr, "softrated: unknown -algo %q (registered: %s)\n", *algo, strings.Join(ctl.Names(), ", "))
		os.Exit(2)
	}

	var cold *coldstore.Store
	if *coldDir != "" {
		ccfg := coldstore.Config{Dir: *coldDir, CompactRatio: *compactRat}
		var inj *faultfs.Injector
		if *chaosCold > 0 {
			// Write-path faults only: spills fail (and trip the breaker)
			// but restores that do reach disk read real bytes, so answered
			// decisions stay byte-identical to a fault-free run. Disarmed
			// until Open finishes — the service comes up healthy and then
			// degrades, rather than failing to start.
			inj = faultfs.Wrap(faultfs.OS{}, uint64(*chaosSeed), faultfs.ChaosRates(*chaosCold))
			inj.Arm(false)
			ccfg.FS = inj
			fmt.Fprintf(os.Stderr, "softrated: CHAOS cold-tier fault injection on (rate %g, seed %d)\n", *chaosCold, *chaosSeed)
		}
		var err error
		cold, err = coldstore.Open(ccfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "softrated:", err)
			os.Exit(1)
		}
		if inj != nil {
			inj.Arm(true)
		}
		cs := cold.Stats()
		fmt.Fprintf(os.Stderr, "softrated: cold tier at %s (%d links recovered, %d segments, %d torn tails truncated)\n",
			*coldDir, cs.Links, cs.Segments, cs.TornTails)
	}

	srv := server.New(server.Config{Store: linkstore.Config{
		Shards:        *shards,
		DefaultAlgo:   spec.ID,
		TTL:           *ttl,
		DropOnEvict:   *dropOnEvict,
		ExpectedLinks: *expected,
		BatchWorkers:  *workers,
		Cold:          cold,
		ColdFront:     *coldFront,
	},
		MaxInflight:  *maxInflight,
		WriteTimeout: *writeTO,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "softrated: listening on %s (%d shards, ttl %v, default algo %s)\n", l.Addr(), *shards, *ttl, spec.Name)

	if *adminAddr != "" {
		admin := &obs.Admin{
			Status:  func() any { return srv.Status() },
			Metrics: func(w io.Writer) { srv.WritePrometheus(w) },
			Drain:   func() { srv.Drain(*drainGrace) },
		}
		al, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "softrated: admin on http://%s\n", al.Addr())
		go func() {
			if err := (&http.Server{Handler: admin.Mux()}).Serve(al); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "softrated: admin:", err)
			}
		}()
	}

	done := make(chan error, 4)
	go func() { done <- srv.Serve(l) }()

	if *udpAddr != "" {
		uaddr, err := net.ResolveUDPAddr("udp", *udpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		uconn, err := net.ListenUDP("udp", uaddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "softrated: udp on %s (burst %d)\n", uconn.LocalAddr(), server.BurstSize)
		go func() { done <- srv.ServeUDP(uconn) }()
	}

	var ringFiles []string
	if *shmPath != "" {
		if *shmRings < 1 {
			*shmRings = 1
		}
		regions := make([]*shmring.Region, *shmRings)
		for i := range regions {
			p := server.RingPath(*shmPath, i)
			g, err := shmring.Create(p, *shmBytes)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer g.Close()
			regions[i] = g
			ringFiles = append(ringFiles, p)
		}
		fmt.Fprintf(os.Stderr, "softrated: shm rings at %s (%d rings, %d bytes each)\n", *shmPath, *shmRings, *shmBytes)
		go func() { done <- srv.ServeSHM(regions) }()
	}
	// The server owns the region files: unlink them on the way out so a
	// stale region can never be attached to a dead server.
	removeRings := func() {
		for _, p := range ringFiles {
			os.Remove(p)
		}
	}
	defer removeRings()

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statsEvery > 0 {
		ticker = time.NewTicker(*statsEvery)
		tick = ticker.C
		defer ticker.Stop()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	for {
		select {
		case <-tick:
			printStats(srv.Stats())
		case <-sig:
			// Same path as /drainz: answer everything already accepted,
			// then come down clean. A second signal during the grace
			// window is not special-cased — Drain force-closes stragglers
			// at the deadline anyway.
			fmt.Fprintf(os.Stderr, "softrated: draining (grace %v)\n", *drainGrace)
			srv.Drain(*drainGrace)
			<-done // Drain already waited out every serve loop; collect one exit
			shutdownCold(srv, cold)
			finalSnapshot(srv)
			return
		case err := <-done:
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			// A serve loop returns nil when a drain (via /drainz) wound it
			// down; make sure the remaining transports are down too, then
			// dump the same final snapshot as the signal path.
			srv.Close()
			shutdownCold(srv, cold)
			finalSnapshot(srv)
			return
		}
	}
}

// shutdownCold spills every remaining hot and RAM-archived link into the
// cold tier and closes it, so the next -cold-dir start recovers the exact
// pre-shutdown state of every link (the drain path has already quiesced
// all traffic by the time this runs).
func shutdownCold(srv *server.Server, cold *coldstore.Store) {
	if cold == nil {
		return
	}
	n, err := srv.Store().SpillAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "softrated: cold spill:", err)
	}
	cs := cold.Stats()
	fmt.Fprintf(os.Stderr, "softrated: cold tier spilled %d links at shutdown (%d links, %d segments, %d MiB on disk)\n",
		n, cs.Links, cs.Segments, cs.DiskBytes>>20)
	if err := cold.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "softrated: cold close:", err)
	}
}

// finalSnapshot logs the one-line counters plus the full ops-plane
// snapshot as JSON, so a drained process leaves its complete final state
// in the log.
func finalSnapshot(srv *server.Server) {
	printStats(srv.Stats())
	st := srv.Status()
	// Per-transport breakdown: which transport carried the traffic, and
	// how well the datagram burst loops amortized (rx/bursts).
	fmt.Fprintf(os.Stderr,
		"softrated: transports | tcp reqs v1=%d v2=%d v3=%d conns=%d | udp rx=%d tx=%d bursts=%d drops=%d | shm rx=%d tx=%d bursts=%d drops=%d rings=%d\n",
		st.Transport.RequestsV1, st.Transport.RequestsV2, st.Transport.RequestsV3, st.Transport.ConnsAccepted,
		st.UDP.DatagramsRx, st.UDP.DatagramsTx, st.UDP.Bursts, st.UDP.Drops,
		st.SHM.DatagramsRx, st.SHM.DatagramsTx, st.SHM.Bursts, st.SHM.Drops, st.SHM.RingsAttached)
	blob, err := json.Marshal(st)
	if err != nil {
		fmt.Fprintln(os.Stderr, "softrated: final snapshot:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "softrated: final status %s\n", blob)
}

func printStats(st server.Stats) {
	fmt.Fprintf(os.Stderr,
		"softrated: %d frames in %d batches | kinds ber=%d collision=%d silent=%d postamble=%d | links live=%d archived=%d evictions=%d creates=%d restores=%d\n",
		st.Frames, st.Batches,
		st.Kinds[0], st.Kinds[1], st.Kinds[2], st.Kinds[3],
		st.Store.Live, st.Store.Archived, st.Store.Evictions, st.Store.Creates, st.Store.Restores)
}
