// Command tracegen generates link traces (the §6.1 methodology) and writes
// them as gzip-compressed JSON for inspection or replay.
//
// Usage:
//
//	tracegen -kind walking -duration 10 -seed 3 -o walking.trace.gz
//	tracegen -kind fading -doppler 400 -snr 18 -o vehicular.trace.gz
//	tracegen -kind static -snr 20 -o static.trace.gz
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"softrate/internal/channel"
	"softrate/internal/trace"
)

func main() {
	var (
		kind     = flag.String("kind", "walking", "channel kind: walking | fading | static")
		duration = flag.Float64("duration", 10, "trace duration in seconds")
		doppler  = flag.Float64("doppler", 40, "Doppler spread in Hz (fading kind)")
		snr      = flag.Float64("snr", 18, "mean SNR in dB (fading/static kinds)")
		payload  = flag.Int("payload", 1400, "frame payload bytes the trace describes")
		seed     = flag.Int64("seed", 1, "PRNG seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var model *channel.Model
	switch *kind {
	case "walking":
		model = channel.NewWalkingModel(rng,
			channel.LinearTrajectory{StartDist: 2, Speed: 1.2},
			channel.PathLoss{RefSNRdB: 26, RefDist: 1, Exponent: 2.2})
	case "fading":
		model = channel.NewStaticModel(*snr, channel.NewRayleigh(rng, *doppler, 0))
	case "static":
		model = channel.NewStaticModel(*snr, nil)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}

	lt := trace.Generate(trace.GenConfig{
		Model:        model,
		Duration:     *duration,
		PayloadBytes: *payload,
		Seed:         *seed + 1,
	})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Save(w, lt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d rates x %d slots (%.1f s, monotone-BER fraction %.2f)\n",
		lt.NumRates(), len(lt.Snapshots[0]), lt.Duration(), lt.MonotoneBERFraction())
}
