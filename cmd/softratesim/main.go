// Command softratesim runs a single-link TCP simulation with a chosen rate
// adaptation algorithm over a chosen channel — a quick way to compare
// algorithms outside the fixed experiment harnesses.
//
// Usage:
//
//	softratesim -alg softrate -channel walking -duration 10
//	softratesim -alg samplerate -channel fading -doppler 400 -snr 18
//	softratesim -alg all -channel walking
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"softrate/internal/channel"
	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/netsim"
	"softrate/internal/ofdm"
	"softrate/internal/rate"
	"softrate/internal/ratectl"
	"softrate/internal/trace"
)

func lossless() []float64 {
	rs := rate.Evaluation()
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = ofdm.Simulation.PayloadAirtime(1400, r, false)
	}
	return out
}

func factoryFor(alg string) (netsim.AdapterFactory, error) {
	switch alg {
	case "softrate":
		return func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.NewSoftRate(core.DefaultConfig())
		}, nil
	case "omniscient":
		return func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(&ratectl.Omniscient{Oracle: fwd.BestRateAt})
		}, nil
	case "snr":
		return func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			th := ratectl.TrainThresholds(fwd.TrainingSamples(), fwd.NumRates(), 0.9)
			return ctl.Wrap(ratectl.NewSNRBased(th, "SNR (trained)"))
		}, nil
	case "charm":
		return func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			th := ratectl.TrainThresholds(fwd.TrainingSamples(), fwd.NumRates(), 0.9)
			return ctl.Wrap(ratectl.NewCHARM(th))
		}, nil
	case "rraa":
		return func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(ratectl.NewRRAA(rate.Evaluation(), lossless(), true))
		}, nil
	case "samplerate":
		return func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(ratectl.NewSampleRate(rate.Evaluation(), lossless(), rand.New(rand.NewSource(rng.Int63()))))
		}, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", alg)
}

func main() {
	var (
		alg      = flag.String("alg", "softrate", "softrate | omniscient | snr | charm | rraa | samplerate | all")
		chanKind = flag.String("channel", "walking", "walking | fading | static")
		doppler  = flag.Float64("doppler", 40, "Doppler Hz (fading)")
		snr      = flag.Float64("snr", 18, "mean SNR dB (fading/static)")
		duration = flag.Float64("duration", 10, "seconds")
		flows    = flag.Int("flows", 1, "number of TCP flows/clients")
		seed     = flag.Int64("seed", 1, "PRNG seed")
	)
	flag.Parse()

	mkModel := func(rng *rand.Rand) *channel.Model {
		switch *chanKind {
		case "walking":
			return channel.NewWalkingModel(rng,
				channel.LinearTrajectory{StartDist: 2, Speed: 1.2},
				channel.PathLoss{RefSNRdB: 26, RefDist: 1, Exponent: 2.2})
		case "fading":
			return channel.NewStaticModel(*snr, channel.NewRayleigh(rng, *doppler, 0))
		case "static":
			return channel.NewStaticModel(*snr, nil)
		}
		fmt.Fprintf(os.Stderr, "unknown channel %q\n", *chanKind)
		os.Exit(2)
		return nil
	}

	var fwd, rev []*trace.LinkTrace
	for i := 0; i < *flows; i++ {
		for j := 0; j < 2; j++ {
			s := *seed + int64(2*i+j)
			lt := trace.Generate(trace.GenConfig{
				Model:    mkModel(rand.New(rand.NewSource(s))),
				Duration: *duration,
				Seed:     s + 100,
			})
			if j == 0 {
				fwd = append(fwd, lt)
			} else {
				rev = append(rev, lt)
			}
		}
	}

	algs := []string{*alg}
	if *alg == "all" {
		algs = []string{"omniscient", "softrate", "snr", "charm", "rraa", "samplerate"}
	}
	for _, a := range algs {
		factory, err := factoryFor(a)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg := netsim.DefaultConfig()
		cfg.Duration = *duration
		cfg.Seed = *seed
		res := netsim.RunUplink(cfg, fwd, rev, factory)
		fmt.Printf("%-12s aggregate %7.2f Mbps", a, res.AggregateBps/1e6)
		for i, f := range res.Flows {
			fmt.Printf("  flow%d %.2f Mbps (retx %d, timeouts %d)", i, f.ThroughputBps/1e6, f.Retransmits, f.Timeouts)
		}
		fmt.Println()
	}
}
