// Command softrate-benchtrend inspects and gates the committed
// BENCH_TREND.jsonl performance ledger (see internal/benchtrend). The
// bench tools append records to it (-trend-out on softrate-loadgen and
// softrate-simbench); this command is the CI regression gate beside the
// static throughput floors:
//
//	softrate-benchtrend -trend BENCH_TREND.jsonl -tool loadgen \
//	    -metrics decisions_per_sec -min-ratio 0.5
//
// compares the newest loadgen record against the median of earlier
// records from hosts with the same CPU count, and exits nonzero if any
// gated metric fell below min-ratio x median. A run with no comparable
// history passes vacuously (first run on a new host shape seeds the
// history rather than failing it). Lower-is-better metrics (resident
// bytes, latency) gate with the direction flipped:
//
//	softrate-benchtrend -trend BENCH_TREND.jsonl -tool loadgen \
//	    -metrics resident_bytes -lower-better -max-ratio 1.5
//
// fails when the newest value exceeds max-ratio x median.
//
//	softrate-benchtrend -trend BENCH_TREND.jsonl -list
//
// prints the ledger one record per line.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"softrate/internal/benchtrend"
)

func main() {
	var (
		trend       = flag.String("trend", "BENCH_TREND.jsonl", "trend ledger to read")
		tool        = flag.String("tool", "", "gate this tool's newest record (loadgen | simbench)")
		transport   = flag.String("transport", "", "gate only records with this transport dimension (in-process | tcp-loopback | udp-loopback | shm | ...); empty = the newest record's transport")
		metrics     = flag.String("metrics", "", "comma list of metric keys to gate (empty = every key in the newest record; gated keys must all share one direction)")
		minRatio    = flag.Float64("min-ratio", 0.5, "fail when current < min-ratio x NumCPU-matched historical median")
		lowerBetter = flag.Bool("lower-better", false, "gate lower-is-better metrics (resident bytes, latency): fail when current > max-ratio x median")
		maxRatio    = flag.Float64("max-ratio", 1.5, "with -lower-better: fail when current > max-ratio x NumCPU-matched historical median")
		list        = flag.Bool("list", false, "print every record and exit")
	)
	flag.Parse()

	recs, err := benchtrend.Load(*trend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(1)
	}

	if *list {
		for _, r := range recs {
			fmt.Printf("%s %-8s %s go=%s cpus=%d", time.Unix(r.UnixSec, 0).UTC().Format("2006-01-02T15:04:05Z"),
				r.Tool, r.GitSHA, r.GoVersion, r.NumCPU)
			if r.Transport != "" {
				fmt.Printf(" transport=%s", r.Transport)
			}
			for _, k := range sortedKeys(r.Metrics) {
				fmt.Printf(" %s=%.6g", k, r.Metrics[k])
			}
			fmt.Println()
		}
		return
	}

	if *tool == "" {
		fmt.Fprintln(os.Stderr, "benchtrend: need -tool (or -list)")
		os.Exit(2)
	}
	var keys []string
	if *metrics != "" {
		for _, k := range strings.Split(*metrics, ",") {
			if k = strings.TrimSpace(k); k != "" {
				keys = append(keys, k)
			}
		}
	}
	var results []benchtrend.CompareResult
	bound, boundName := *minRatio, "floor"
	if *lowerBetter {
		bound, boundName = *maxRatio, "ceiling"
		results, err = benchtrend.GateLower(recs, *tool, *transport, keys, *maxRatio)
	} else {
		results, err = benchtrend.Gate(recs, *tool, *transport, keys, *minRatio)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(1)
	}
	failed := false
	for _, r := range results {
		if r.Samples == 0 {
			fmt.Printf("PASS %-32s %.6g (no comparable history; seeding)\n", r.Metric, r.Current)
			continue
		}
		verdict := "PASS"
		if !r.Pass {
			verdict, failed = "FAIL", true
		}
		fmt.Printf("%s %-32s %.6g vs median %.6g over %d runs (ratio %.2f, %s %.2f)\n",
			verdict, r.Metric, r.Current, r.Median, r.Samples, r.Ratio, boundName, bound)
	}
	if failed {
		os.Exit(1)
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
